use std::fmt;

/// Index of a sensitive attribute within an [`AttributeSchema`].
///
/// # Example
///
/// ```
/// use muffin_data::AttributeId;
///
/// let id = AttributeId::new(1);
/// assert_eq!(id.index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttributeId(usize);

muffin_json::impl_json!(newtype AttributeId);

impl AttributeId {
    /// Wraps a raw attribute index.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for AttributeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attr#{}", self.0)
    }
}

/// Index of a group within one sensitive attribute.
///
/// Stored compactly as `u16`: the paper's attributes have at most nine
/// groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(u16);

muffin_json::impl_json!(newtype GroupId);

impl GroupId {
    /// Wraps a raw group index.
    pub fn new(index: u16) -> Self {
        Self(index)
    }

    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for GroupId {
    fn from(v: u16) -> Self {
        Self(v)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group#{}", self.0)
    }
}

/// A sensitive attribute (e.g. `age`, `site`, `gender`) and the names of
/// its groups.
///
/// # Example
///
/// ```
/// use muffin_data::SensitiveAttribute;
///
/// let attr = SensitiveAttribute::new("gender", &["male", "female"]);
/// assert_eq!(attr.num_groups(), 2);
/// assert_eq!(attr.group_name(muffin_data::GroupId::new(1)), Some("female"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SensitiveAttribute {
    name: String,
    groups: Vec<String>,
}

muffin_json::impl_json!(struct SensitiveAttribute { name, groups });

impl SensitiveAttribute {
    /// Creates an attribute from its name and group names.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn new(name: impl Into<String>, groups: &[&str]) -> Self {
        assert!(!groups.is_empty(), "an attribute needs at least one group");
        Self { name: name.into(), groups: groups.iter().map(|s| s.to_string()).collect() }
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Names of all groups.
    pub fn group_names(&self) -> impl Iterator<Item = &str> {
        self.groups.iter().map(String::as_str)
    }

    /// Name of one group, if in range.
    pub fn group_name(&self, group: GroupId) -> Option<&str> {
        self.groups.get(group.index()).map(String::as_str)
    }

    /// Looks up a group by name.
    pub fn group_by_name(&self, name: &str) -> Option<GroupId> {
        self.groups.iter().position(|g| g == name).map(|i| GroupId::new(i as u16))
    }
}

/// The ordered set of sensitive attributes a dataset carries.
///
/// # Example
///
/// ```
/// use muffin_data::{AttributeSchema, SensitiveAttribute};
///
/// let schema = AttributeSchema::new(vec![
///     SensitiveAttribute::new("age", &["young", "old"]),
///     SensitiveAttribute::new("site", &["torso", "head"]),
/// ]);
/// assert_eq!(schema.len(), 2);
/// assert!(schema.by_name("site").is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeSchema {
    attributes: Vec<SensitiveAttribute>,
}

muffin_json::impl_json!(struct AttributeSchema { attributes });

impl AttributeSchema {
    /// Creates a schema from an ordered attribute list.
    pub fn new(attributes: Vec<SensitiveAttribute>) -> Self {
        Self { attributes }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// The attribute at `id`, if in range.
    pub fn get(&self, id: AttributeId) -> Option<&SensitiveAttribute> {
        self.attributes.get(id.index())
    }

    /// Iterator over `(id, attribute)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AttributeId, &SensitiveAttribute)> {
        self.attributes.iter().enumerate().map(|(i, a)| (AttributeId::new(i), a))
    }

    /// Looks up an attribute id by name.
    pub fn by_name(&self, name: &str) -> Option<AttributeId> {
        self.attributes.iter().position(|a| a.name() == name).map(AttributeId::new)
    }

    /// All attribute names in schema order.
    pub fn attribute_names(&self) -> Vec<&str> {
        self.attributes.iter().map(SensitiveAttribute::name).collect()
    }

    /// Label of one attribute pair, e.g. `age×gender`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn pair_label(&self, a: AttributeId, b: AttributeId) -> String {
        format!("{}×{}", self.attributes[a.index()].name(), self.attributes[b.index()].name())
    }

    /// Human name of one **row-major joint cell** of an attribute pair
    /// (the indexing `joint_group_ids` produces), e.g. `old×female`.
    ///
    /// Returns `None` if an id or the cell index is out of range.
    pub fn joint_cell_name(&self, a: AttributeId, b: AttributeId, cell: usize) -> Option<String> {
        let (attr_a, attr_b) = (self.get(a)?, self.get(b)?);
        if cell >= attr_a.num_groups() * attr_b.num_groups() {
            return None;
        }
        let ga = GroupId::new((cell / attr_b.num_groups()) as u16);
        let gb = GroupId::new((cell % attr_b.num_groups()) as u16);
        Some(format!("{}×{}", attr_a.group_name(ga)?, attr_b.group_name(gb)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> AttributeSchema {
        AttributeSchema::new(vec![
            SensitiveAttribute::new("age", &["0-35", "36-65", "66+"]),
            SensitiveAttribute::new("gender", &["male", "female"]),
        ])
    }

    #[test]
    fn group_lookup_round_trips() {
        let attr = SensitiveAttribute::new("site", &["torso", "head", "oral"]);
        let id = attr.group_by_name("head").expect("exists");
        assert_eq!(attr.group_name(id), Some("head"));
    }

    #[test]
    fn group_lookup_unknown_is_none() {
        let attr = SensitiveAttribute::new("site", &["torso"]);
        assert!(attr.group_by_name("leg").is_none());
        assert!(attr.group_name(GroupId::new(5)).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn attribute_requires_groups() {
        SensitiveAttribute::new("empty", &[]);
    }

    #[test]
    fn schema_by_name_finds_attribute() {
        let s = schema();
        let id = s.by_name("gender").expect("exists");
        assert_eq!(s.get(id).map(|a| a.num_groups()), Some(2));
        assert!(s.by_name("missing").is_none());
    }

    #[test]
    fn schema_iteration_is_ordered() {
        let s = schema();
        let names: Vec<&str> = s.iter().map(|(_, a)| a.name()).collect();
        assert_eq!(names, vec!["age", "gender"]);
    }

    #[test]
    fn ids_display_readably() {
        assert_eq!(AttributeId::new(2).to_string(), "attr#2");
        assert_eq!(GroupId::new(3).to_string(), "group#3");
    }

    #[test]
    fn group_id_from_u16() {
        let g: GroupId = 4u16.into();
        assert_eq!(g.index(), 4);
    }

    #[test]
    fn joint_cell_names_decode_row_major() {
        let s = schema();
        let (age, gender) = (AttributeId::new(0), AttributeId::new(1));
        assert_eq!(s.pair_label(age, gender), "age×gender");
        assert_eq!(s.joint_cell_name(age, gender, 0).as_deref(), Some("0-35×male"));
        assert_eq!(s.joint_cell_name(age, gender, 5).as_deref(), Some("66+×female"));
        assert!(s.joint_cell_name(age, gender, 6).is_none());
        assert!(s.joint_cell_name(age, AttributeId::new(9), 0).is_none());
    }
}
