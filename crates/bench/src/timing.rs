//! Minimal in-repo benchmark harness replacing the `criterion` dependency.
//!
//! Methodology, in criterion's spirit but a few hundred lines smaller:
//!
//! 1. **warmup** — run the closure for a fixed wall-clock budget to fault in
//!    caches and estimate the per-iteration cost;
//! 2. **auto-batching** — pick an iteration count per sample so one sample
//!    takes roughly the harness's target sample time (10 ms by default),
//!    keeping timer overhead negligible for nanosecond-scale closures;
//! 3. **median-of-N** — report the median over [`Harness::sample_size`]
//!    samples, which is robust to scheduler noise where a mean is not.
//!
//! Results print as a table and are dumped as JSON (via `muffin-json`) to
//! `target/muffin-bench/<suite>.json`, or `$MUFFIN_BENCH_OUT/<suite>.json`
//! when that variable is set, so perf history can be tracked across
//! commits without any external tooling.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One benchmark's summarised timing, serialised into the suite JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name, unique within the suite.
    pub name: String,
    /// Iterations batched into each timed sample.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: u32,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: f64,
}

muffin_json::impl_json!(struct BenchRecord {
    name, iters_per_sample, samples, median_ns, min_ns, max_ns,
});

/// Collects and reports timings for one benchmark suite (one bench binary).
pub struct Harness {
    suite: String,
    sample_size: u32,
    /// Global override parsed from `MUFFIN_BENCH_SAMPLES` at construction.
    /// Wins over the per-bench [`Harness::sample_size`] knob so CI smoke
    /// runs can clamp every suite, but loses to an explicit
    /// [`Harness::samples`] builder call.
    env_samples: Option<u32>,
    forced_samples: Option<u32>,
    out_dir: Option<String>,
    warmup_ms: u64,
    target_sample_ms: u64,
    records: Vec<BenchRecord>,
}

impl Harness {
    /// Creates a harness for the named suite with default settings
    /// (10 samples, 30 ms warmup, ~10 ms per sample).
    ///
    /// The environment supplies *defaults* only: `MUFFIN_BENCH_SAMPLES`
    /// overrides per-bench [`Harness::sample_size`] tuning (so CI smoke
    /// runs shrink every suite at once), and `MUFFIN_BENCH_OUT` picks the
    /// JSON output directory. Both lose to the explicit
    /// [`Harness::samples`] / [`Harness::out_dir`] builder calls.
    pub fn new(suite: &str) -> Self {
        let env_samples = std::env::var("MUFFIN_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok());
        Self {
            suite: suite.to_owned(),
            sample_size: 10,
            env_samples,
            forced_samples: None,
            out_dir: None,
            warmup_ms: 30,
            target_sample_ms: 10,
            records: Vec::new(),
        }
    }

    /// Forces the sample count for every subsequent [`Harness::bench`]
    /// call, taking precedence over both `MUFFIN_BENCH_SAMPLES` and
    /// [`Harness::sample_size`]. Intended for tests and tooling that must
    /// not depend on ambient process state.
    pub fn samples(mut self, samples: u32) -> Self {
        self.forced_samples = Some(samples.max(2));
        self
    }

    /// Directs the JSON dump of [`Harness::finish`] to `dir`, taking
    /// precedence over `MUFFIN_BENCH_OUT`.
    pub fn out_dir(mut self, dir: impl Into<String>) -> Self {
        self.out_dir = Some(dir.into());
        self
    }

    /// Sets the number of timed samples for subsequent [`Harness::bench`]
    /// calls (the `criterion` `sample_size` knob; use small values for
    /// expensive closures like whole search episodes). Overridden by
    /// `MUFFIN_BENCH_SAMPLES` and by [`Harness::samples`].
    pub fn sample_size(&mut self, samples: u32) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// The sample count the next [`Harness::bench`] call will use, after
    /// applying the precedence chain: [`Harness::samples`] builder, then
    /// `MUFFIN_BENCH_SAMPLES`, then [`Harness::sample_size`].
    fn effective_samples(&self) -> u32 {
        self.forced_samples
            .or(self.env_samples)
            .unwrap_or(self.sample_size)
            .max(2)
    }

    /// Times `f` and records the result under `name`.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        // Warmup doubles as the cost estimate for auto-batching.
        let warmup = Duration::from_millis(self.warmup_ms);
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters == 0 || warm_start.elapsed() < warmup {
            black_box(f());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        let target_ns = (self.target_sample_ms as f64) * 1e6;
        let iters = ((target_ns / est_ns) as u64).clamp(1, 1_000_000);

        let samples = self.effective_samples();
        let mut per_iter: Vec<f64> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));

        let record = BenchRecord {
            name: name.to_owned(),
            iters_per_sample: iters,
            samples,
            median_ns: median(&per_iter),
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
        };
        println!(
            "{:<44} {:>12}/iter  (min {}, max {}, {} iters x {} samples)",
            record.name,
            format_ns(record.median_ns),
            format_ns(record.min_ns),
            format_ns(record.max_ns),
            record.iters_per_sample,
            record.samples,
        );
        self.records.push(record);
    }

    /// Prints the suite footer and writes the JSON dump.
    ///
    /// # Panics
    ///
    /// Panics if the output directory or file cannot be written — a bench
    /// run that silently loses its results is worse than a crash.
    pub fn finish(self) {
        // `cargo bench` runs with the package dir as CWD, so a relative
        // default would land in a stray `crates/bench/target/`; anchor it
        // to the workspace target dir instead.
        let dir = self.out_dir.clone().unwrap_or_else(|| {
            std::env::var("MUFFIN_BENCH_OUT").unwrap_or_else(|_| {
                concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/muffin-bench").to_owned()
            })
        });
        std::fs::create_dir_all(&dir).expect("create bench output dir");
        let path = format!("{dir}/{}.json", self.suite);
        let mut doc = muffin_json::Json::object();
        doc.insert("suite", muffin_json::Json::Str(self.suite.clone()));
        doc.insert("results", muffin_json::ToJson::to_json(&self.records));
        std::fs::write(&path, doc.to_string_pretty()).expect("write bench results");
        println!(
            "{}: {} benchmarks, results -> {path}",
            self.suite,
            self.records.len()
        );
    }
}

/// Median of an already-sorted sample list. For an even count the two
/// middle samples are averaged — picking `sorted[len / 2]` alone biases
/// the reported median high whenever the upper half is slower.
fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    assert!(n > 0, "median of an empty sample list");
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_sane_record_and_json() {
        // The builder overrides keep this test hermetic: no mutation of
        // process-global environment (`set_var` is unsound with threaded
        // test runners and leaked into sibling tests).
        let dir = std::env::temp_dir().join("mb-test").display().to_string();
        let mut h = Harness::new("smoke").samples(3).out_dir(&dir);
        h.warmup_ms = 1;
        h.target_sample_ms = 1;
        h.bench("noop_sum", || (0..100u64).sum::<u64>());
        assert_eq!(h.records.len(), 1);
        let r = h.records[0].clone();
        assert_eq!(r.samples, 3);
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        h.finish();
        let path = std::env::temp_dir().join("mb-test").join("smoke.json");
        let text = std::fs::read_to_string(path).unwrap();
        let doc = muffin_json::parse(&text).unwrap();
        let results: Vec<BenchRecord> = doc.field("results").expect("results field decodes");
        assert_eq!(results[0].name, "noop_sum");
    }

    #[test]
    fn median_averages_middle_pair_for_even_counts() {
        // Odd count: the single middle element.
        assert_eq!(median(&[1.0, 2.0, 100.0]), 2.0);
        assert_eq!(median(&[5.0]), 5.0);
        // Even count: mean of the two middle elements, not the upper one.
        assert_eq!(median(&[1.0, 2.0, 4.0, 100.0]), 3.0);
        assert_eq!(median(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn samples_builder_beats_sample_size_knob() {
        let mut h = Harness::new("precedence").samples(4);
        h.sample_size(9);
        assert_eq!(h.effective_samples(), 4);

        let mut h = Harness::new("precedence");
        h.sample_size(9);
        // Without a forced override the per-bench knob applies (unless the
        // process carries MUFFIN_BENCH_SAMPLES, which wins over the knob).
        assert_eq!(h.effective_samples(), h.env_samples.unwrap_or(9));
        // Simulate the env override without touching the real environment.
        h.env_samples = Some(3);
        assert_eq!(h.effective_samples(), 3);
        h = h.samples(6);
        assert_eq!(h.effective_samples(), 6);
    }

    #[test]
    fn format_ns_scales_units() {
        assert_eq!(format_ns(500.0), "500 ns");
        assert_eq!(format_ns(2_500.0), "2.50 us");
        assert_eq!(format_ns(3_000_000.0), "3.00 ms");
        assert_eq!(format_ns(1.5e9), "1.500 s");
    }
}
