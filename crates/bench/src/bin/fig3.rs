//! **Figure 3** — models are complementary on fairness: for the site
//! attribute's unprivileged groups, ResNet-18 and the site-optimised
//! DenseNet121 disagree in correctness on a meaningful fraction of samples
//! (the paper reports 01+10 = 15.93%), so uniting them can lift the
//! unprivileged groups' accuracy.

use muffin::{DisagreementBreakdown, PrivilegeMap, TextTable};
use muffin_bench::{isic_context, print_header};

fn main() {
    let ctx = isic_context();
    print_header(
        "Figure 3: correctness breakdown for R18 + optimised D121 on site-unprivileged data",
        ctx.scale,
    );

    let site = ctx.dataset.schema().by_name("site").expect("site");
    let r18 = ctx.pool.by_name("ResNet-18").expect("in pool");
    let d121_opt = ctx.pool.by_name("DenseNet121+D(site)").expect("in pool");

    let privilege = PrivilegeMap::infer(&ctx.pool, &ctx.split.val, &[site], 0.02);
    let unpriv_groups = privilege.unprivileged_groups(site).to_vec();
    println!("inferred unprivileged site groups: {unpriv_groups:?}");

    let test = &ctx.split.test;
    let preds_a = r18.predict(test.features());
    let preds_b = d121_opt.predict(test.features());
    let unpriv_idx: Vec<usize> = (0..test.len())
        .filter(|&i| unpriv_groups.contains(&test.groups(site)[i]))
        .collect();
    let priv_idx: Vec<usize> =
        (0..test.len()).filter(|&i| !unpriv_groups.contains(&test.groups(site)[i])).collect();

    let bd = DisagreementBreakdown::of(&preds_a, &preds_b, test.labels(), Some(&unpriv_idx));
    let mut table = TextTable::new(&["pattern", "probability", "meaning"]);
    table.row_owned(vec!["00".into(), format!("{:.2}%", bd.both_wrong * 100.0), "both wrong".into()]);
    table.row_owned(vec![
        "01".into(),
        format!("{:.2}%", bd.first_only * 100.0),
        "ResNet-18 correct, DenseNet121+D(site) wrong".into(),
    ]);
    table.row_owned(vec![
        "10".into(),
        format!("{:.2}%", bd.second_only * 100.0),
        "DenseNet121+D(site) correct, ResNet-18 wrong".into(),
    ]);
    table.row_owned(vec!["11".into(), format!("{:.2}%", bd.both_right * 100.0), "both correct".into()]);
    println!("{table}");
    println!(
        "disagreement 01+10 = {:.2}% (paper: 15.93%) over {} unprivileged samples",
        bd.disagreement() * 100.0,
        bd.count
    );

    // Fig. 3(b): uniting the models lifts the unprivileged group.
    let acc = |preds: &[usize], idx: &[usize]| {
        idx.iter().filter(|&&i| preds[i] == test.labels()[i]).count() as f32
            / idx.len().max(1) as f32
    };
    let mut table = TextTable::new(&["metric", "unprivileged", "privileged"]);
    table.row_owned(vec![
        "ResNet-18 accuracy".into(),
        format!("{:.2}%", acc(&preds_a, &unpriv_idx) * 100.0),
        format!("{:.2}%", acc(&preds_a, &priv_idx) * 100.0),
    ]);
    table.row_owned(vec![
        "DenseNet121+D(site) accuracy".into(),
        format!("{:.2}%", acc(&preds_b, &unpriv_idx) * 100.0),
        format!("{:.2}%", acc(&preds_b, &priv_idx) * 100.0),
    ]);
    table.row_owned(vec![
        "oracle union (either correct)".into(),
        format!("{:.2}%", bd.oracle_accuracy() * 100.0),
        String::new(),
    ]);
    println!("{table}");
    println!("paper shape: the union accuracy on the unprivileged group is far above");
    println!("either single model — the headroom the muffin head is trained to capture.");
}
