//! **Table I** — the main comparison: for four base models, the vanilla
//! network vs the D and L single-attribute baselines vs Muffin (the base
//! model united with a searched partner and muffin head). Muffin improves
//! **both** unfair attributes simultaneously and gains accuracy on small
//! backbones.

use muffin::{fmt_improvement, MuffinSearch, SearchConfig, TextTable};
use muffin_bench::{isic_context, print_header};
use muffin_models::{Architecture, FairnessMethod};

fn main() {
    let mut ctx = isic_context();
    print_header("Table I: Muffin vs existing fairness techniques", ctx.scale);

    let age = ctx.dataset.schema().by_name("age").expect("age");
    let site = ctx.dataset.schema().by_name("site").expect("site");

    let base_models = [
        Architecture::shufflenet_v2_x1_0(),
        Architecture::mobilenet_v3_small(),
        Architecture::densenet121(),
        Architecture::resnet18(),
    ];

    let mut summary = TextTable::new(&[
        "model", "vil U_age", "vil U_site", "vil acc", "paired", "MLP", "Muffin U_age",
        "Muffin U_site", "Muffin acc", "age imp", "site imp", "acc imp",
    ]);

    for base in &base_models {
        let vanilla = ctx
            .pool
            .by_name(base.name())
            .expect("vanilla model in pool")
            .evaluate(&ctx.split.test);
        let v_age = vanilla.attribute("age").unwrap().unfairness;
        let v_site = vanilla.attribute("site").unwrap().unfairness;

        println!("--- {} ({} params) ---", base.name(), base.reported_params());
        let mut table =
            TextTable::new(&["method", "U_age", "U_site", "acc", "age vs vil", "site vs vil"]);
        table.row_owned(vec![
            "Vanilla".into(),
            format!("{v_age:.4}"),
            format!("{v_site:.4}"),
            format!("{:.2}%", vanilla.accuracy * 100.0),
            "·".into(),
            "·".into(),
        ]);

        for (method, attr, label) in [
            (FairnessMethod::DataBalancing, age, "D(Age)"),
            (FairnessMethod::DataBalancing, site, "D(Site)"),
            (FairnessMethod::FairLoss, age, "L(Age)"),
            (FairnessMethod::FairLoss, site, "L(Site)"),
        ] {
            let model = method.apply(base, &ctx.split.train, attr, &ctx.backbone, &mut ctx.rng);
            let e = model.evaluate(&ctx.split.test);
            let u_age = e.attribute("age").unwrap().unfairness;
            let u_site = e.attribute("site").unwrap().unfairness;
            table.row_owned(vec![
                label.into(),
                format!("{u_age:.4}"),
                format!("{u_site:.4}"),
                format!("{:.2}%", e.accuracy * 100.0),
                fmt_improvement(v_age, u_age),
                fmt_improvement(v_site, u_site),
            ]);
        }

        // Muffin: fix the base model in the body, search the partner + head.
        let base_idx = ctx.pool.index_of(base.name()).expect("in pool");
        let config = SearchConfig::paper(&["age", "site"])
            .with_episodes(ctx.scale.episodes * 2)
            .with_slots(1)
            .with_required_models(vec![base_idx]);
        let search = MuffinSearch::new(ctx.pool.clone(), ctx.split.clone(), config)
            .expect("search setup");
        let outcome = search.run(&mut ctx.rng).expect("search runs");
        // The paper's Table I rows improve both attributes; select like the
        // paper does — the highest-reward candidate whose validation
        // unfairness beats vanilla on BOTH attributes, falling back to the
        // best-reward candidate if the search found none.
        let vanilla_val = ctx
            .pool
            .by_name(base.name())
            .expect("vanilla model in pool")
            .evaluate(&ctx.split.val);
        let (vv_age, vv_site) = (
            vanilla_val.attribute("age").unwrap().unfairness,
            vanilla_val.attribute("site").unwrap().unfairness,
        );
        // Demand a margin on validation so small test-split noise cannot
        // flip an improvement back into a degradation.
        let both_improving = outcome
            .distinct()
            .into_iter()
            .filter(|r| r.unfairness[0] < 0.95 * vv_age && r.unfairness[1] < 0.95 * vv_site)
            .max_by(|a, b| a.reward.partial_cmp(&b.reward).unwrap_or(std::cmp::Ordering::Equal));
        // Fallback: the candidate with the best *worst-attribute* relative
        // improvement, so the report never trades one attribute away for
        // the other when a balanced option exists.
        let best = both_improving.unwrap_or_else(|| {
            outcome
                .distinct()
                .into_iter()
                .max_by(|a, b| {
                    let maximin = |r: &muffin::EpisodeRecord| {
                        let age_imp = (vv_age - r.unfairness[0]) / vv_age;
                        let site_imp = (vv_site - r.unfairness[1]) / vv_site;
                        age_imp.min(site_imp)
                    };
                    maximin(a).partial_cmp(&maximin(b)).unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("history is non-empty")
        });
        let fusing = search.rebuild(best).expect("rebuild");
        let e = fusing.evaluate(search.pool(), &ctx.split.test);
        let m_age = e.attribute("age").unwrap().unfairness;
        let m_site = e.attribute("site").unwrap().unfairness;
        table.row_owned(vec![
            "Muffin".into(),
            format!("{m_age:.4}"),
            format!("{m_site:.4}"),
            format!("{:.2}%", e.accuracy * 100.0),
            fmt_improvement(v_age, m_age),
            fmt_improvement(v_site, m_site),
        ]);
        println!("{table}");
        let paired: Vec<&str> = best
            .model_names
            .iter()
            .map(String::as_str)
            .filter(|&n| n != base.name())
            .collect();
        println!("Muffin pairs {} with {:?}, head {}\n", base.name(), paired, best.head_desc);

        summary.row_owned(vec![
            base.name().to_string(),
            format!("{v_age:.3}"),
            format!("{v_site:.3}"),
            format!("{:.2}%", vanilla.accuracy * 100.0),
            paired.join("+"),
            best.head_desc.clone(),
            format!("{m_age:.3}"),
            format!("{m_site:.3}"),
            format!("{:.2}%", e.accuracy * 100.0),
            fmt_improvement(v_age, m_age),
            fmt_improvement(v_site, m_site),
            format!("{:+.2}pp", (e.accuracy - vanilla.accuracy) * 100.0),
        ]);
    }

    println!("=== Table I summary (Muffin vs vanilla) ===");
    println!("{summary}");
    println!("paper shape: D/L improve at most one attribute (and often degrade the other);");
    println!("Muffin improves age AND site together, with accuracy gains on the small models");
    println!("(paper: +26.32%/+20.37% fairness and +5.58% accuracy for MobileNet_V3_Small).");
}
