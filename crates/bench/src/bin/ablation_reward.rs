//! **Reward-shape ablation** — the paper's Eq. 3 ratio reward vs a linear
//! accuracy-minus-penalty scalarisation vs a worst-attribute-first reward.
//! Same pool, budget and controller; only the reward the controller is
//! trained on differs. Shows what the ratio form buys: pressure on *both*
//! unfairness scores without a λ to tune.

use muffin::{MuffinSearch, RewardKind, SearchConfig, TextTable};
use muffin_bench::{isic_context, print_header};
use muffin_tensor::Rng64;

fn main() {
    let ctx = isic_context();
    print_header("Ablation: reward shapes (Eq. 3 vs alternatives)", ctx.scale);

    let mut table = TextTable::new(&[
        "reward", "best acc", "best U_age", "best U_site", "body",
    ]);
    for (label, kind) in [
        ("Eq. 3 ratio (paper)", RewardKind::PaperRatio),
        ("linear penalty λ=0.3", RewardKind::LinearPenalty { lambda: 0.3 }),
        ("worst attribute", RewardKind::WorstAttribute),
    ] {
        let config = SearchConfig::paper(&["age", "site"])
            .with_episodes(ctx.scale.episodes)
            .with_reward_kind(kind);
        let search = MuffinSearch::new(ctx.pool.clone(), ctx.split.clone(), config)
            .expect("search setup");
        let outcome = search.run(&mut Rng64::seed(900)).expect("search runs");
        // Evaluate the best candidate on the held-out test split.
        let fusing = search.rebuild(outcome.best()).expect("rebuild");
        let e = fusing.evaluate(search.pool(), &ctx.split.test);
        table.row_owned(vec![
            label.into(),
            format!("{:.2}%", e.accuracy * 100.0),
            format!("{:.4}", e.attribute("age").unwrap().unfairness),
            format!("{:.4}", e.attribute("site").unwrap().unfairness),
            outcome.best().model_names.join("+"),
        ]);
    }
    println!("{table}");
    println!("the ratio reward couples accuracy and fairness without a tunable trade-off");
    println!("weight; the linear form needs λ chosen per dataset, and worst-attribute");
    println!("ignores the second attribute once it is no longer the maximum.");
}
