//! **Figure 5** — exploration by Muffin: Muffin-Nets push forward the
//! Pareto frontiers of (a) age unfairness vs site unfairness and (b)
//! accuracy vs overall unfairness, relative to the existing networks.

use muffin::{pareto_max_min_indices, pareto_min_indices, MuffinSearch, SearchConfig, TextTable};
use muffin_bench::{isic_context, plots_dir, print_header};
use muffin_plot::{Marker, ScatterChart};

fn main() {
    let mut ctx = isic_context();
    print_header("Figure 5: Pareto frontiers — existing networks vs Muffin-Nets", ctx.scale);

    // Existing networks: the vanilla zoo evaluated on the test split.
    let existing: Vec<_> = ctx
        .pool
        .iter()
        .take(ctx.vanilla_count)
        .map(|m| m.evaluate(&ctx.split.test))
        .collect();

    // Muffin-Nets: distinct candidates from an unrestricted search,
    // re-evaluated on the test split.
    let config = SearchConfig::paper(&["age", "site"]).with_episodes(ctx.scale.episodes);
    let search =
        MuffinSearch::new(ctx.pool.clone(), ctx.split.clone(), config).expect("search setup");
    let outcome = search.run(&mut ctx.rng).expect("search runs");
    // Rank distinct candidates by validation reward and test the strongest.
    // Real Muffin-Nets unite at least two models; degenerate single-model
    // bodies (duplicate slot picks) are excluded from the exploration plot.
    let mut distinct: Vec<_> = outcome
        .distinct()
        .into_iter()
        .filter(|r| r.model_names.len() >= 2)
        .cloned()
        .collect();
    distinct.sort_by(|a, b| b.reward.partial_cmp(&a.reward).unwrap_or(std::cmp::Ordering::Equal));
    let muffin_evals: Vec<_> = distinct
        .iter()
        .take(20)
        .map(|record| {
            let fusing = search.rebuild(record).expect("rebuild");
            (record.clone(), fusing.evaluate(search.pool(), &ctx.split.test))
        })
        .collect();

    println!("(a) series: U_age vs U_site   [x y label]");
    for e in &existing {
        println!(
            "existing {:.4} {:.4} {}",
            e.attribute("age").unwrap().unfairness,
            e.attribute("site").unwrap().unfairness,
            e.model
        );
    }
    for (r, e) in &muffin_evals {
        println!(
            "muffin   {:.4} {:.4} {}+{}",
            e.attribute("age").unwrap().unfairness,
            e.attribute("site").unwrap().unfairness,
            r.model_names.join("+"),
            r.head_desc
        );
    }

    let u = |e: &muffin::ModelEvaluation| {
        (e.attribute("age").unwrap().unfairness, e.attribute("site").unwrap().unfairness)
    };
    let existing_front = pareto_min_indices(&existing, u);
    let muffin_front = pareto_min_indices(&muffin_evals, |(_, e)| u(e));

    let mut table = TextTable::new(&["frontier", "members (U_age, U_site)"]);
    table.row_owned(vec![
        "existing".into(),
        existing_front
            .iter()
            .map(|&i| format!("({:.3},{:.3})", u(&existing[i]).0, u(&existing[i]).1))
            .collect::<Vec<_>>()
            .join(" "),
    ]);
    table.row_owned(vec![
        "muffin".into(),
        muffin_front
            .iter()
            .map(|&i| format!("({:.3},{:.3})", u(&muffin_evals[i].1).0, u(&muffin_evals[i].1).1))
            .collect::<Vec<_>>()
            .join(" "),
    ]);
    println!("\n{table}");

    // Pareto-dominance check: does some Muffin-Net dominate each existing
    // frontier member (the "push forward" claim)?
    let pushed = existing_front.iter().all(|&i| {
        let target = u(&existing[i]);
        muffin_evals.iter().any(|(_, e)| {
            let point = u(e);
            point.0 <= target.0 && point.1 <= target.1
        })
    });
    println!(
        "Muffin {} the existing (U_age, U_site) frontier",
        if pushed { "pushes forward" } else { "does not fully dominate" }
    );

    // (b) accuracy vs overall unfairness.
    println!("\n(b) series: accuracy vs U_age+U_site   [x y label]");
    let total_u = |e: &muffin::ModelEvaluation| {
        e.attribute("age").unwrap().unfairness + e.attribute("site").unwrap().unfairness
    };
    for e in &existing {
        println!("existing {:.4} {:.4} {}", e.accuracy, total_u(e), e.model);
    }
    for (r, e) in &muffin_evals {
        println!("muffin   {:.4} {:.4} {}", e.accuracy, total_u(e), r.model_names.join("+"));
    }
    let best_existing_acc = existing.iter().map(|e| e.accuracy).fold(f32::MIN, f32::max);
    let best_muffin_acc = muffin_evals.iter().map(|(_, e)| e.accuracy).fold(f32::MIN, f32::max);
    println!(
        "\nbest accuracy: existing {:.2}% vs Muffin {:.2}% (paper: only Muffin-Net exceeds 82%)",
        best_existing_acc * 100.0,
        best_muffin_acc * 100.0
    );
    let acc_front = pareto_max_min_indices(&muffin_evals, |(_, e)| (e.accuracy, total_u(e)));
    println!("Muffin accuracy-vs-overall-unfairness frontier has {} members", acc_front.len());

    // Rendered figures.
    let dir = plots_dir();
    let existing_pts: Vec<(f32, f32)> = existing.iter().map(u).collect();
    let muffin_pts: Vec<(f32, f32)> = muffin_evals.iter().map(|(_, e)| u(e)).collect();
    let chart = ScatterChart::new("Fig 5(a): unfairness of age vs site", "U_age", "U_site")
        .series("existing networks", Marker::Circle, &existing_pts)
        .frontier(&existing_front.iter().map(|&i| existing_pts[i]).collect::<Vec<_>>())
        .series("Muffin-Nets", Marker::Triangle, &muffin_pts)
        .frontier(&muffin_front.iter().map(|&i| muffin_pts[i]).collect::<Vec<_>>());
    if chart.save(dir.join("fig5a.svg")).is_ok() {
        println!("wrote {}", dir.join("fig5a.svg").display());
    }
    let existing_b: Vec<(f32, f32)> = existing.iter().map(|e| (e.accuracy, total_u(e))).collect();
    let muffin_b: Vec<(f32, f32)> =
        muffin_evals.iter().map(|(_, e)| (e.accuracy, total_u(e))).collect();
    let chart_b = ScatterChart::new("Fig 5(b): accuracy vs overall unfairness", "accuracy", "U_age + U_site")
        .series("existing networks", Marker::Circle, &existing_b)
        .series("Muffin-Nets", Marker::Triangle, &muffin_b);
    if chart_b.save(dir.join("fig5b.svg")).is_ok() {
        println!("wrote {}", dir.join("fig5b.svg").display());
    }
}
