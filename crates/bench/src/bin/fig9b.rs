//! **Figure 9(b)** — ablation: the effect of the number of paired models.
//! Sweeping the body size from 1 to 4 shows the reward plateaus around two
//! paired models while the total parameter count explodes — the
//! unfairness/accuracy/parameters trade-off the paper illustrates.

use muffin::{MuffinSearch, SearchConfig, TextTable};
use muffin_bench::{isic_context, plots_dir, print_header};
use muffin_plot::LineChart;

fn main() {
    let mut ctx = isic_context();
    print_header("Figure 9(b): effect of the number of paired models", ctx.scale);

    let mut table = TextTable::new(&[
        "paired models", "best reward", "val acc", "val U_age", "val U_site", "total params",
        "head params",
    ]);
    let episodes = (ctx.scale.episodes / 2).max(10);
    let mut reward_curve: Vec<(f32, f32)> = Vec::new();
    let mut param_curve: Vec<(f32, f32)> = Vec::new();
    for slots in 1..=4usize {
        let config = SearchConfig::paper(&["age", "site"])
            .with_episodes(episodes)
            .with_slots(slots);
        let search = MuffinSearch::new(ctx.pool.clone(), ctx.split.clone(), config)
            .expect("search setup");
        let outcome = search.run(&mut ctx.rng).expect("search runs");
        // Best candidate that actually uses `slots` distinct bodies, if
        // any (duplicate selections collapse); fall back to overall best.
        let best = outcome
            .distinct()
            .into_iter()
            .filter(|r| r.model_names.len() == slots)
            .max_by(|a, b| a.reward.partial_cmp(&b.reward).unwrap_or(std::cmp::Ordering::Equal))
            .cloned()
            .unwrap_or_else(|| outcome.best().clone());
        reward_curve.push((slots as f32, best.reward));
        param_curve.push((slots as f32, best.total_params as f32 / 1e7));
        table.row_owned(vec![
            format!("{slots} ({})", best.model_names.join("+")),
            format!("{:.3}", best.reward),
            format!("{:.2}%", best.accuracy * 100.0),
            format!("{:.4}", best.unfairness[0]),
            format!("{:.4}", best.unfairness[1]),
            best.total_params.to_string(),
            best.head_params.to_string(),
        ]);
    }
    println!("{table}");
    println!("paper shape: expanding the body past two models explodes the parameter count");
    println!("while the reward stays at the same level — the paired-model sweet spot is 2.");

    let chart = LineChart::new("Fig 9(b): reward and parameters vs body size", "paired models", "normalised")
        .series("best reward (scaled)", &reward_curve)
        .series("total params (scaled)", &param_curve);
    let path = plots_dir().join("fig9b.svg");
    if chart.save(&path).is_ok() {
        println!("wrote {}", path.display());
    }
}
