//! **Controller ablation** — REINFORCE RNN controller vs uniform random
//! search over the identical candidate space, budget and per-candidate
//! training. Prints best-reward-so-far curves; the learned controller
//! should reach high-reward candidates with fewer evaluations.

use muffin::{random_search, MuffinSearch, SearchConfig, TextTable};
use muffin_bench::{isic_context, plots_dir, print_header};
use muffin_plot::LineChart;
use muffin_tensor::Rng64;

fn best_so_far(rewards: &[f32]) -> Vec<f32> {
    let mut best = f32::MIN;
    rewards
        .iter()
        .map(|&r| {
            best = best.max(r);
            best
        })
        .collect()
}

fn main() {
    let ctx = isic_context();
    print_header("Ablation: REINFORCE controller vs random search", ctx.scale);

    let config = SearchConfig::paper(&["age", "site"]).with_episodes(ctx.scale.episodes);
    let search =
        MuffinSearch::new(ctx.pool.clone(), ctx.split.clone(), config).expect("search setup");

    let rl = search.run(&mut Rng64::seed(401)).expect("rl search");
    let random = random_search(&search, &mut Rng64::seed(401)).expect("random search");

    let rl_curve = best_so_far(&rl.history.iter().map(|r| r.reward).collect::<Vec<_>>());
    let rnd_curve = best_so_far(&random.history.iter().map(|r| r.reward).collect::<Vec<_>>());

    let mut table = TextTable::new(&["episode", "RL best-so-far", "random best-so-far"]);
    let n = rl_curve.len();
    for checkpoint in [0, n / 8, n / 4, n / 2, 3 * n / 4, n - 1] {
        table.row_owned(vec![
            checkpoint.to_string(),
            format!("{:.4}", rl_curve[checkpoint]),
            format!("{:.4}", rnd_curve[checkpoint]),
        ]);
    }
    println!("{table}");

    let rl_distinct = rl.distinct().len();
    let rnd_distinct = random.distinct().len();
    println!("distinct candidates evaluated: RL {rl_distinct}, random {rnd_distinct}");
    println!(
        "final best reward: RL {:.4} vs random {:.4}",
        rl_curve[n - 1],
        rnd_curve[n - 1]
    );
    println!(
        "mean reward over all episodes: RL {:.4} vs random {:.4} (the controller's",
        rl.history.iter().map(|r| r.reward).sum::<f32>() / n as f32,
        random.history.iter().map(|r| r.reward).sum::<f32>() / n as f32
    );
    println!("exploitation shows up as a higher average, not only a higher max)");

    let to_pts = |curve: &[f32]| -> Vec<(f32, f32)> {
        curve.iter().enumerate().map(|(i, &r)| (i as f32, r)).collect()
    };
    let chart = LineChart::new("Controller ablation: best reward so far", "episode", "reward")
        .series("REINFORCE controller", &to_pts(&rl_curve))
        .series("random search", &to_pts(&rnd_curve));
    let path = plots_dir().join("ablation_controller.svg");
    if chart.save(&path).is_ok() {
        println!("wrote {}", path.display());
    }
}
