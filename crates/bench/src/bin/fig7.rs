//! **Figure 7** — validation on the Fitzpatrick17K-like dataset: Muffin
//! pushes forward the Pareto frontiers of skin-tone vs lesion-type
//! unfairness and of accuracy vs overall unfairness, showing the framework
//! generalises beyond ISIC.

use muffin::{pareto_min_indices, MuffinSearch, SearchConfig, TextTable};
use muffin_bench::{fitzpatrick_context, plots_dir, print_header};
use muffin_plot::{Marker, ScatterChart};

fn main() {
    let mut ctx = fitzpatrick_context();
    print_header("Figure 7: Fitzpatrick17K validation", ctx.scale);

    let existing: Vec<_> = ctx
        .pool
        .iter()
        .take(ctx.vanilla_count)
        .map(|m| m.evaluate(&ctx.split.test))
        .collect();

    let config = SearchConfig::paper(&["skin_tone", "type"]).with_episodes(ctx.scale.episodes);
    let search =
        MuffinSearch::new(ctx.pool.clone(), ctx.split.clone(), config).expect("search setup");
    let outcome = search.run(&mut ctx.rng).expect("search runs");
    // Real Muffin-Nets unite at least two models; degenerate single-model
    // bodies (duplicate slot picks) are excluded from the exploration plot.
    let mut distinct: Vec<_> = outcome
        .distinct()
        .into_iter()
        .filter(|r| r.model_names.len() >= 2)
        .cloned()
        .collect();
    distinct.sort_by(|a, b| b.reward.partial_cmp(&a.reward).unwrap_or(std::cmp::Ordering::Equal));
    let muffin_evals: Vec<_> = distinct
        .iter()
        .take(16)
        .map(|r| {
            let fusing = search.rebuild(r).expect("rebuild");
            (r.clone(), fusing.evaluate(search.pool(), &ctx.split.test))
        })
        .collect();

    let u = |e: &muffin::ModelEvaluation| {
        (e.attribute("skin_tone").unwrap().unfairness, e.attribute("type").unwrap().unfairness)
    };

    println!("(a) series: U_skin_tone vs U_type   [x y label]");
    for e in &existing {
        println!("existing {:.4} {:.4} {}", u(e).0, u(e).1, e.model);
    }
    for (r, e) in &muffin_evals {
        println!("muffin   {:.4} {:.4} {}", u(e).0, u(e).1, r.model_names.join("+"));
    }

    let existing_front = pareto_min_indices(&existing, u);
    let muffin_front = pareto_min_indices(&muffin_evals, |(_, e)| u(e));
    let mut table = TextTable::new(&["frontier", "members (U_tone, U_type)"]);
    table.row_owned(vec![
        "existing".into(),
        existing_front
            .iter()
            .map(|&i| format!("({:.3},{:.3})", u(&existing[i]).0, u(&existing[i]).1))
            .collect::<Vec<_>>()
            .join(" "),
    ]);
    table.row_owned(vec![
        "muffin".into(),
        muffin_front
            .iter()
            .map(|&i| format!("({:.3},{:.3})", u(&muffin_evals[i].1).0, u(&muffin_evals[i].1).1))
            .collect::<Vec<_>>()
            .join(" "),
    ]);
    println!("\n{table}");

    println!("(b) series: accuracy vs U_tone+U_type   [x y label]");
    let total = |e: &muffin::ModelEvaluation| u(e).0 + u(e).1;
    for e in &existing {
        println!("existing {:.4} {:.4} {}", e.accuracy, total(e), e.model);
    }
    for (r, e) in &muffin_evals {
        println!("muffin   {:.4} {:.4} {}", e.accuracy, total(e), r.model_names.join("+"));
    }

    // Rendered figure.
    let dir = plots_dir();
    let existing_pts: Vec<(f32, f32)> = existing.iter().map(u).collect();
    let muffin_pts: Vec<(f32, f32)> = muffin_evals.iter().map(|(_, e)| u(e)).collect();
    let chart = ScatterChart::new("Fig 7(a): skin-tone vs type unfairness", "U_skin_tone", "U_type")
        .series("existing networks", Marker::Circle, &existing_pts)
        .frontier(&existing_front.iter().map(|&i| existing_pts[i]).collect::<Vec<_>>())
        .series("Muffin-Nets", Marker::Triangle, &muffin_pts)
        .frontier(&muffin_front.iter().map(|&i| muffin_pts[i]).collect::<Vec<_>>());
    if chart.save(dir.join("fig7a.svg")).is_ok() {
        println!("\nwrote {}", dir.join("fig7a.svg").display());
    }

    let balance = outcome
        .best_united_balanced()
        .or_else(|| outcome.best_balanced())
        .expect("non-empty");
    println!(
        "\nMuffin-Balance: {} head {} (val U {:?}) — used for the Figure 8 detail",
        balance.model_names.join(" + "),
        balance.head_desc,
        balance.unfairness
    );
}
