//! **Multi-seed variance study.** The paper reports single-run numbers;
//! this harness reruns a compact Table-I-style comparison over several
//! experiment seeds and reports mean ± std of the headline metrics, so the
//! reproduction's claims carry error bars.
//!
//! ```text
//! cargo run --release -p muffin-bench --bin seeds [num_seeds]
//! ```

use muffin::{intersectional_unfairness, MuffinSearch, SearchConfig, TextTable};
use muffin_bench::{quick_mode, Scale};
use muffin_data::IsicLike;
use muffin_models::{Architecture, BackboneConfig, ModelPool};
use muffin_tensor::Rng64;

struct RunMetrics {
    best_vanilla_acc: f32,
    muffin_acc: f32,
    vanilla_u_age: f32,
    muffin_u_age: f32,
    vanilla_u_site: f32,
    muffin_u_site: f32,
    vanilla_u_joint: f32,
    muffin_u_joint: f32,
}

fn run_seed(seed: u64, scale: Scale) -> RunMetrics {
    let mut rng = Rng64::seed(seed);
    let samples = if quick_mode() { 2_000 } else { 12_000 };
    let dataset = IsicLike::new().with_num_samples(samples).generate(&mut rng);
    let split = dataset.split_default(&mut rng);
    let backbone = BackboneConfig::default().with_epochs(scale.backbone_epochs);
    let pool = ModelPool::train(
        &split.train,
        &[
            Architecture::shufflenet_v2_x1_0(),
            Architecture::densenet121(),
            Architecture::resnet18(),
            Architecture::resnet34(),
            Architecture::resnet50(),
            Architecture::mobilenet_v3_large(),
        ],
        &backbone,
        &mut rng,
    );

    let age = dataset.schema().by_name("age").expect("age");
    let site = dataset.schema().by_name("site").expect("site");
    let age_groups = dataset.schema().get(age).expect("age").num_groups();
    let site_groups = dataset.schema().get(site).expect("site").num_groups();
    let joint_u = |preds: &[usize]| {
        intersectional_unfairness(
            preds,
            split.test.labels(),
            split.test.groups(age),
            age_groups,
            split.test.groups(site),
            site_groups,
        )
    };

    // Select the vanilla champion on the VALIDATION split (as Muffin's
    // candidate is selected), then measure it on test — otherwise the
    // baseline would enjoy oracle test-set selection.
    let champion = pool
        .iter()
        .max_by(|a, b| {
            let va = a.evaluate(&split.val).accuracy;
            let vb = b.evaluate(&split.val).accuracy;
            va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("non-empty pool");
    let vanilla = (champion.predict(split.test.features()), champion.evaluate(&split.test));

    let config = SearchConfig::paper(&["age", "site"]).with_episodes(scale.episodes.max(20));
    let search = MuffinSearch::new(pool, split.clone(), config).expect("search setup");
    let outcome = search.run(&mut rng).expect("search runs");
    let fusing = search.rebuild(outcome.best()).expect("rebuild");
    let muffin_preds = fusing.predict(search.pool(), split.test.features());
    let muffin_eval = fusing.evaluate(search.pool(), &split.test);

    RunMetrics {
        best_vanilla_acc: vanilla.1.accuracy,
        muffin_acc: muffin_eval.accuracy,
        vanilla_u_age: vanilla.1.attribute("age").unwrap().unfairness,
        muffin_u_age: muffin_eval.attribute("age").unwrap().unfairness,
        vanilla_u_site: vanilla.1.attribute("site").unwrap().unfairness,
        muffin_u_site: muffin_eval.attribute("site").unwrap().unfairness,
        vanilla_u_joint: joint_u(&vanilla.0),
        muffin_u_joint: joint_u(&muffin_preds),
    }
}

fn mean_std(values: &[f32]) -> (f32, f32) {
    let n = values.len().max(1) as f32;
    let mean = values.iter().sum::<f32>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
    (mean, var.sqrt())
}

fn main() {
    let num_seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick_mode() { 2 } else { 3 });
    let scale = Scale::from_env();
    muffin_bench::print_header(
        &format!("Multi-seed variance study ({num_seeds} seeds)"),
        scale,
    );

    let runs: Vec<RunMetrics> = (0..num_seeds).map(|s| run_seed(101 + s, scale)).collect();
    let col = |f: fn(&RunMetrics) -> f32| -> (f32, f32) {
        mean_std(&runs.iter().map(f).collect::<Vec<_>>())
    };

    let mut table = TextTable::new(&["metric", "best vanilla", "Muffin", "delta"]);
    for (label, vf, mf) in [
        (
            "accuracy",
            col(|r: &RunMetrics| r.best_vanilla_acc),
            col(|r: &RunMetrics| r.muffin_acc),
        ),
        ("U_age", col(|r| r.vanilla_u_age), col(|r| r.muffin_u_age)),
        ("U_site", col(|r| r.vanilla_u_site), col(|r| r.muffin_u_site)),
        ("U_age×site (intersectional)", col(|r| r.vanilla_u_joint), col(|r| r.muffin_u_joint)),
    ]
    .map(|(l, v, m)| (l, v, m))
    {
        table.row_owned(vec![
            label.to_string(),
            format!("{:.3} ± {:.3}", vf.0, vf.1),
            format!("{:.3} ± {:.3}", mf.0, mf.1),
            format!("{:+.3}", mf.0 - vf.0),
        ]);
    }
    println!("{table}");
    println!("Muffin's best-reward candidate vs the most accurate vanilla model, averaged");
    println!("over {num_seeds} independent dataset/pool/search seeds (mean ± std).");
}
