//! **Figure 2** — no existing single-model method improves two unfair
//! attributes simultaneously: applying D (data balancing) or L (fair loss)
//! to one attribute worsens the other (the seesaw), and models that are
//! already fair on an attribute hit a bottleneck.

use muffin::TextTable;
use muffin_bench::{isic_context, print_header};
use muffin_models::{Architecture, FairnessMethod};

fn main() {
    let mut ctx = isic_context();
    print_header("Figure 2: single-attribute methods seesaw between age and site", ctx.scale);

    let age = ctx.dataset.schema().by_name("age").expect("age");
    let site = ctx.dataset.schema().by_name("site").expect("site");

    for arch in
        [Architecture::resnet18(), Architecture::densenet121(), Architecture::mobilenet_v2()]
    {
        let vanilla = ctx
            .pool
            .by_name(arch.name())
            .expect("vanilla model in pool")
            .evaluate(&ctx.split.test);
        let (v_age, v_site) = (
            vanilla.attribute("age").unwrap().unfairness,
            vanilla.attribute("site").unwrap().unfairness,
        );

        let mut table = TextTable::new(&["variant", "acc", "U_age", "U_site", "age", "site"]);
        table.row_owned(vec![
            "vanilla".into(),
            format!("{:.2}%", vanilla.accuracy * 100.0),
            format!("{v_age:.4}"),
            format!("{v_site:.4}"),
            "·".into(),
            "·".into(),
        ]);
        for (method, attr, label) in [
            (FairnessMethod::DataBalancing, age, "D(Age)"),
            (FairnessMethod::DataBalancing, site, "D(Site)"),
            (FairnessMethod::FairLoss, age, "L(Age)"),
            (FairnessMethod::FairLoss, site, "L(Site)"),
        ] {
            let model = method.apply(&arch, &ctx.split.train, attr, &ctx.backbone, &mut ctx.rng);
            let e = model.evaluate(&ctx.split.test);
            let (u_age, u_site) = (
                e.attribute("age").unwrap().unfairness,
                e.attribute("site").unwrap().unfairness,
            );
            let verdict = |before: f32, after: f32| {
                if after < before - 1e-3 {
                    "improved"
                } else if after > before + 1e-3 {
                    "WORSE"
                } else {
                    "flat"
                }
            };
            table.row_owned(vec![
                label.into(),
                format!("{:.2}%", e.accuracy * 100.0),
                format!("{u_age:.4}"),
                format!("{u_site:.4}"),
                verdict(v_age, u_age).into(),
                verdict(v_site, u_site).into(),
            ]);
        }
        println!("{} (vanilla U_age {:.3}, U_site {:.3})", arch.name(), v_age, v_site);
        println!("{table}");
    }
    println!("paper shape: optimising one attribute raises the other's unfairness,");
    println!("and models already fair on an attribute cannot push it further (bottleneck).");
}
