//! **Figure 9(a)** — ablation: the importance of the weighted proxy
//! dataset. For the fixed head `[16,16,16,8]` on the paper's pair
//! (optimised DenseNet121 + original ResNet-18), training with the
//! Algorithm-1 weighted dataset lowers both age and site unfairness while
//! keeping accuracy, compared with uniform (original-dataset) weights.

use muffin::{
    Candidate, FusingStructure, HeadSpec, HeadTrainConfig, MuffinError, PrivilegeMap,
    ProxyDataset, TextTable,
};
use muffin_bench::{isic_context, print_header};
use muffin_nn::Activation;
use muffin_tensor::Rng64;

fn run_variant(
    label: &str,
    ctx: &muffin_bench::Context,
    proxy: &ProxyDataset,
    table: &mut TextTable,
) -> Result<(), MuffinError> {
    let candidate = Candidate {
        model_indices: vec![
            ctx.pool.index_of("DenseNet121+D(site)").expect("optimised D121 in pool"),
            ctx.pool.index_of("ResNet-18").expect("R18 in pool"),
        ],
        head: HeadSpec::new(vec![16, 16, 16, 8], Activation::Relu),
    };
    let mut head_rng = Rng64::seed(0xF19A);
    let mut fusing = FusingStructure::new(
        candidate.model_indices.clone(),
        candidate.head.clone(),
        &ctx.pool,
        &mut head_rng,
    )?;
    fusing.train_head(&ctx.pool, &ctx.split.train, proxy, &HeadTrainConfig::default(), &mut head_rng);
    let e = fusing.evaluate(&ctx.pool, &ctx.split.test);
    table.row_owned(vec![
        label.into(),
        format!("{:.4}", e.attribute("age").unwrap().unfairness),
        format!("{:.4}", e.attribute("site").unwrap().unfairness),
        format!("{:.2}%", e.accuracy * 100.0),
    ]);
    Ok(())
}

fn main() {
    let ctx = isic_context();
    print_header("Figure 9(a): weighted proxy dataset vs original (uniform) dataset", ctx.scale);
    println!("fixed pair: DenseNet121+D(site) + ResNet-18, fixed head [16,16,16,8]\n");

    let age = ctx.dataset.schema().by_name("age").expect("age");
    let site = ctx.dataset.schema().by_name("site").expect("site");
    let privilege = PrivilegeMap::infer(&ctx.pool, &ctx.split.val, &[age, site], 0.02);
    let weighted = ProxyDataset::build(&ctx.split.train, &privilege).expect("proxy");
    let uniform = weighted.with_uniform_weights();

    let mut table = TextTable::new(&["training data", "U_age", "U_site", "acc"]);
    run_variant("weighted (Algorithm 1)", &ctx, &weighted, &mut table).expect("variant runs");
    run_variant("original (uniform)", &ctx, &uniform, &mut table).expect("variant runs");
    println!("{table}");
    println!("paper shape: with the weighted dataset both unfairness scores decline while");
    println!("overall accuracy is maintained.");
}
