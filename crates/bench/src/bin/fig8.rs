//! **Figure 8** — detailed result of Muffin-Balance on the
//! Fitzpatrick17K-like dataset: per-skin-tone accuracy of ResNet-18 vs
//! Muffin-Balance. Muffin gains on some tones, gives a little back on
//! others, and ends up much fairer at unchanged overall accuracy.

use muffin::{per_group_accuracy_table, MuffinSearch, SearchConfig, TextTable};
use muffin_bench::{fitzpatrick_context, plots_dir, print_header};
use muffin_plot::BarChart;

fn main() {
    let mut ctx = fitzpatrick_context();
    print_header("Figure 8: per-skin-tone accuracy, ResNet-18 vs Muffin-Balance", ctx.scale);

    let tone = ctx.dataset.schema().by_name("skin_tone").expect("skin_tone");
    let tone_attr = ctx.dataset.schema().get(tone).expect("attribute");

    let config = SearchConfig::paper(&["skin_tone", "type"]).with_episodes(ctx.scale.episodes);
    let search =
        MuffinSearch::new(ctx.pool.clone(), ctx.split.clone(), config).expect("search setup");
    let outcome = search.run(&mut ctx.rng).expect("search runs");
    let record = outcome
        .best_united_balanced()
        .or_else(|| outcome.best_balanced())
        .expect("non-empty history");
    let fusing = search.rebuild(record).expect("rebuild");
    println!("Muffin-Balance = {} head {}\n", record.model_names.join(" + "), record.head_desc);

    let test = &ctx.split.test;
    let r18 = search.pool().by_name("ResNet-18").expect("in pool");
    let r18_preds = r18.predict(test.features());
    let muffin_preds = fusing.predict(search.pool(), test.features());

    let table = per_group_accuracy_table(&[&r18_preds, &muffin_preds], test, tone);
    let mut out = TextTable::new(&["skin tone", "n", "ResNet-18", "Muffin-Balance", "delta"]);
    for (g, n, accs) in &table {
        let name = tone_attr.group_name(muffin_data::GroupId::new(*g)).unwrap_or("?");
        out.row_owned(vec![
            name.to_string(),
            n.to_string(),
            format!("{:.2}%", accs[0] * 100.0),
            format!("{:.2}%", accs[1] * 100.0),
            format!("{:+.2}pp", (accs[1] - accs[0]) * 100.0),
        ]);
    }
    println!("{out}");

    let r18_eval = r18.evaluate(test);
    let muffin_eval = fusing.evaluate(search.pool(), test);
    println!(
        "overall: ResNet-18 acc {:.2}% U_tone {:.3} | Muffin-Balance acc {:.2}% U_tone {:.3}",
        r18_eval.accuracy * 100.0,
        r18_eval.attribute("skin_tone").unwrap().unfairness,
        muffin_eval.accuracy * 100.0,
        muffin_eval.attribute("skin_tone").unwrap().unfairness,
    );
    println!("paper shape: gains on light/medium tones can offset small losses elsewhere, so");
    println!("overall accuracy holds while the model becomes much fairer across tones.");

    let mut chart = BarChart::new("Fig 8: per-skin-tone accuracy", "accuracy")
        .series_labels(&["ResNet-18", "Muffin-Balance"]);
    for (g, _, accs) in &table {
        let name = tone_attr.group_name(muffin_data::GroupId::new(*g)).unwrap_or("?");
        chart = chart.category(name, &[accs[0], accs[1]]);
    }
    let path = plots_dir().join("fig8.svg");
    if chart.save(&path).is_ok() {
        println!("wrote {}", path.display());
    }
}
