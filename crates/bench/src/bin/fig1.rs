//! **Figure 1** — fairness of existing neural architectures on different
//! attributes: (a–b) the gender attribute has uniformly small unfairness,
//! (c) age and site both have high unfairness and no single architecture
//! wins both.

use muffin::{pareto_min_indices, TextTable};
use muffin_bench::{isic_context, plots_dir, print_header};
use muffin_plot::BarChart;

fn main() {
    let ctx = isic_context();
    print_header("Figure 1: unfairness of existing architectures per attribute", ctx.scale);

    let evals: Vec<_> = ctx
        .pool
        .iter()
        .take(ctx.vanilla_count)
        .map(|m| m.evaluate(&ctx.split.test))
        .collect();

    let mut table = TextTable::new(&[
        "model", "acc", "U_age", "gap_age", "U_site", "gap_site", "U_gender", "gap_gender",
    ]);
    for e in &evals {
        let row = |name: &str| {
            let a = e.attribute(name).expect("attribute present");
            (format!("{:.4}", a.unfairness), format!("{:.2}%", a.accuracy_gap * 100.0))
        };
        let (ua, ga) = row("age");
        let (us, gs) = row("site");
        let (ug, gg) = row("gender");
        table.row_owned(vec![
            e.model.clone(),
            format!("{:.2}%", e.accuracy * 100.0),
            ua,
            ga,
            us,
            gs,
            ug,
            gg,
        ]);
    }
    println!("{table}");

    let max_gender =
        evals.iter().map(|e| e.attribute("gender").unwrap().unfairness).fold(f32::MIN, f32::max);
    let min_age =
        evals.iter().map(|e| e.attribute("age").unwrap().unfairness).fold(f32::MAX, f32::min);
    let min_site =
        evals.iter().map(|e| e.attribute("site").unwrap().unfairness).fold(f32::MAX, f32::min);
    println!("max gender unfairness: {max_gender:.4} (paper: < 0.12, ~3% gap)");
    println!("min age unfairness:    {min_age:.4} (paper: > 0.4, 36.27% gap)");
    println!("min site unfairness:   {min_site:.4} (paper: > 0.4, 45.04% gap)");

    // Paper claim: the age and site rankings disagree — no architecture
    // dominates both (the Fig. 1(c) Pareto frontier has multiple members).
    let frontier = pareto_min_indices(&evals, |e| {
        (e.attribute("age").unwrap().unfairness, e.attribute("site").unwrap().unfairness)
    });
    println!("\nPareto frontier of (U_age, U_site) among existing networks:");
    for &i in &frontier {
        println!("  {}", evals[i].model);
    }
    println!(
        "frontier size {} — {}",
        frontier.len(),
        if frontier.len() > 1 {
            "no single architecture takes over both attributes (matches paper)"
        } else {
            "WARNING: one architecture dominates both (differs from paper)"
        }
    );

    // Rendered figure: one bar group per model, one bar per attribute.
    let mut chart = BarChart::new("Fig 1: unfairness per attribute", "unfairness score U")
        .series_labels(&["age", "site", "gender"]);
    for e in &evals {
        chart = chart.category(
            &e.model,
            &[
                e.attribute("age").unwrap().unfairness,
                e.attribute("site").unwrap().unfairness,
                e.attribute("gender").unwrap().unfairness,
            ],
        );
    }
    let path = plots_dir().join("fig1.svg");
    if chart.save(&path).is_ok() {
        println!("wrote {}", path.display());
    }
}
