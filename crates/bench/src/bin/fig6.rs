//! **Figure 6** — detailed result of Muffin-Site: per-subgroup accuracy of
//! the fused model vs its paired models, and the composition of its
//! accuracy and error rate on the unprivileged site groups (which paired
//! model each correct answer came from).

use muffin::{
    per_group_accuracy_table, FusionComposition, MuffinSearch, PrivilegeMap, SearchConfig,
    TextTable,
};
use muffin_bench::{isic_context, print_header};

fn main() {
    let mut ctx = isic_context();
    print_header("Figure 6: inside Muffin-Site", ctx.scale);

    let site = ctx.dataset.schema().by_name("site").expect("site");
    let site_attr = ctx.dataset.schema().get(site).expect("site attribute");
    let group_name =
        |g: u16| site_attr.group_name(muffin_data::GroupId::new(g)).unwrap_or("?").to_string();

    // Muffin-Site: the searched candidate with the lowest site unfairness.
    let config = SearchConfig::paper(&["age", "site"]).with_episodes(ctx.scale.episodes);
    let search =
        MuffinSearch::new(ctx.pool.clone(), ctx.split.clone(), config).expect("search setup");
    let outcome = search.run(&mut ctx.rng).expect("search runs");
    let record = outcome
        .best_united_for_attribute(1)
        .or_else(|| outcome.best_for_attribute(1))
        .expect("non-empty history");
    let fusing = search.rebuild(record).expect("rebuild");
    println!("Muffin-Site = {} with head {}\n", record.model_names.join(" + "), record.head_desc);

    let test = &ctx.split.test;
    let fused_preds = fusing.predict(search.pool(), test.features());
    let body: Vec<_> = fusing
        .model_indices()
        .iter()
        .map(|&i| search.pool().get(i).expect("valid index"))
        .collect();
    let body_preds: Vec<Vec<usize>> = body.iter().map(|m| m.predict(test.features())).collect();

    // (a) per-subgroup accuracy: paired models vs Muffin-Site.
    let mut all_preds: Vec<&[usize]> = body_preds.iter().map(Vec::as_slice).collect();
    all_preds.push(&fused_preds);
    let table = per_group_accuracy_table(&all_preds, test, site);
    let privilege = PrivilegeMap::infer(search.pool(), &ctx.split.val, &[site], 0.02);
    let unpriv = privilege.unprivileged_groups(site).to_vec();

    let mut header: Vec<String> = vec!["site group".into(), "n".into()];
    header.extend(body.iter().map(|m| m.name().to_string()));
    header.push("Muffin-Site".into());
    header.push("unprivileged".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut out = TextTable::new(&header_refs);
    for (g, n, accs) in &table {
        let mut row = vec![group_name(*g), n.to_string()];
        row.extend(accs.iter().map(|a| format!("{:.2}%", a * 100.0)));
        row.push(if unpriv.contains(g) { "yes".into() } else { String::new() });
        out.row_owned(row);
    }
    println!("(a) per-subgroup accuracy\n{out}");

    // (b)+(c) accuracy/error composition per unprivileged group.
    println!("(c) composition of accuracy and error rate (unprivileged groups)");
    let mut comp_table = TextTable::new(&[
        "group", "n", "acc", "both", "only-A", "only-B", "neither", "err:recoverable",
        "leverage",
    ]);
    for &g in &unpriv {
        let idx: Vec<usize> =
            (0..test.len()).filter(|&i| test.groups(site)[i] == g).collect();
        if idx.is_empty() {
            continue;
        }
        let comp = FusionComposition::of(
            &fused_preds,
            &body_preds[0],
            body_preds.get(1).map_or(&body_preds[0], |v| v),
            test.labels(),
            Some(&idx),
        );
        comp_table.row_owned(vec![
            group_name(g),
            idx.len().to_string(),
            format!("{:.2}%", comp.fused_accuracy() * 100.0),
            format!("{:.2}%", comp.correct_both * 100.0),
            format!("{:.2}%", comp.correct_first_only * 100.0),
            format!("{:.2}%", comp.correct_second_only * 100.0),
            format!("{:.2}%", comp.correct_neither * 100.0),
            format!(
                "{:.2}%",
                (comp.error_both + comp.error_first_only + comp.error_second_only) * 100.0
            ),
            format!("{:.2}", comp.leverage()),
        ]);
    }
    println!("{comp_table}");
    println!("paper shape: the green (both-correct) mass is the main accuracy source; on the");
    println!("best-leveraged group every answer either model had right is kept (leverage 1.0).");
}
