//! Diagnostic probe: how much of the oracle headroom does the muffin head
//! capture on unprivileged groups, across head-loss variants?

use muffin::{FusingStructure, HeadSpec, HeadTrainConfig, PrivilegeMap, ProxyDataset};
use muffin_bench::isic_context;
use muffin_nn::{Activation, LossKind, LrSchedule};
use muffin_tensor::Rng64;

fn main() {
    let ctx = isic_context();
    let age = ctx.dataset.schema().by_name("age").unwrap();
    let site = ctx.dataset.schema().by_name("site").unwrap();
    let privilege = PrivilegeMap::infer(&ctx.pool, &ctx.split.val, &[age, site], 0.02);
    let proxy = ProxyDataset::build(&ctx.split.train, &privilege).expect("proxy");
    let test = &ctx.split.test;
    let unpriv_idx: Vec<usize> = (0..test.len())
        .filter(|&i| {
            privilege.is_unprivileged(age, test.groups(age)[i])
                || privilege.is_unprivileged(site, test.groups(site)[i])
        })
        .collect();

    let a = ctx.pool.index_of("ResNet-50").unwrap();
    let b = ctx.pool.index_of("ResNet-34").unwrap();
    let preds_a = ctx.pool.get(a).unwrap().predict(test.features());
    let preds_b = ctx.pool.get(b).unwrap().predict(test.features());
    let acc_on = |preds: &[usize], idx: &[usize]| {
        idx.iter().filter(|&&i| preds[i] == test.labels()[i]).count() as f32 / idx.len() as f32
    };
    let oracle = unpriv_idx
        .iter()
        .filter(|&&i| preds_a[i] == test.labels()[i] || preds_b[i] == test.labels()[i])
        .count() as f32
        / unpriv_idx.len() as f32;
    println!(
        "unpriv acc: A {:.3} B {:.3} oracle {:.3} ({} samples)",
        acc_on(&preds_a, &unpriv_idx),
        acc_on(&preds_b, &unpriv_idx),
        oracle,
        unpriv_idx.len()
    );

    // Disagreement-only proxy: restrict support to samples where the pair
    // disagrees in the training split.
    let train_preds_a = ctx.pool.get(a).unwrap().predict(ctx.split.train.features());
    let train_preds_b = ctx.pool.get(b).unwrap().predict(ctx.split.train.features());
    let disagree_proxy = {
        let keep: Vec<usize> = proxy
            .indices()
            .iter()
            .enumerate()
            .filter(|(_, &i)| train_preds_a[i] != train_preds_b[i])
            .map(|(k, _)| k)
            .collect();
        println!("disagreement proxy: {} of {} samples", keep.len(), proxy.len());
        keep
    };

    for (label, loss, epochs, lr, disagree_only) in [
        ("MSE e60 lr.4", LossKind::WeightedMse, 60u32, 0.4f32, false),
        ("MSE e150 lr.6", LossKind::WeightedMse, 150, 0.6, false),
        ("MSE e60 disagree", LossKind::WeightedMse, 60, 0.4, true),
        ("MSE e150 disagree", LossKind::WeightedMse, 150, 0.4, true),
        ("CE e150 disagree", LossKind::WeightedCrossEntropy, 150, 0.2, true),
    ] {
        let mut rng = Rng64::seed(999);
        let mut fusing = FusingStructure::new(
            vec![a, b],
            HeadSpec::new(vec![16, 16, 12], Activation::Relu),
            &ctx.pool,
            &mut rng,
        )
        .unwrap();
        let cfg = HeadTrainConfig {
            epochs,
            batch_size: 64,
            schedule: LrSchedule::StepDecay { initial: lr, decay: 0.9, every: 15 },
            loss,
        };
        let data = if disagree_only {
            use muffin::ProxyDataset;
            // Rebuild a proxy restricted to disagreement rows.
            let indices: Vec<usize> =
                disagree_proxy.iter().map(|&k| proxy.indices()[k]).collect();
            let weights: Vec<f32> =
                disagree_proxy.iter().map(|&k| proxy.weights()[k]).collect();
            ProxyDataset::from_parts(indices, weights)
        } else {
            proxy.clone()
        };
        fusing.train_head(&ctx.pool, &ctx.split.train, &data, &cfg, &mut rng);
        let preds = fusing.predict(&ctx.pool, test.features());
        let e = fusing.evaluate(&ctx.pool, test);
        println!(
            "{label:18} unpriv acc {:.3} | overall {:.3} U_age {:.3} U_site {:.3}",
            acc_on(&preds, &unpriv_idx),
            e.accuracy,
            e.attribute("age").unwrap().unfairness,
            e.attribute("site").unwrap().unfairness
        );
    }
}
