//! **Extension: robustness to label noise.** Clinical labels are noisy,
//! and annotation noise often concentrates on the very groups that are
//! already disadvantaged. This experiment retrains the pipeline on
//! training labels corrupted at increasing rates — uniformly, and targeted
//! at the unprivileged age groups — and asks whether Muffin's simultaneous
//! fairness improvement survives.

use muffin::{MuffinSearch, SearchConfig, TextTable};
use muffin_bench::{print_header, Scale};
use muffin_data::{Dataset, IsicLike};
use muffin_models::{Architecture, BackboneConfig, ModelPool};
use muffin_tensor::Rng64;

fn run_condition(
    label: &str,
    corrupt: impl Fn(&Dataset, &mut Rng64) -> Dataset,
    scale: Scale,
    table: &mut TextTable,
) {
    let mut rng = Rng64::seed(muffin_bench::EXPERIMENT_SEED + 40);
    let clean = IsicLike::new().with_num_samples(scale.num_samples.min(6_000)).generate(&mut rng);
    let split = clean.split_default(&mut rng);
    // Corrupt only the training labels; evaluation stays clean.
    let noisy_train = corrupt(&split.train, &mut rng);
    let backbone = BackboneConfig::default().with_epochs(scale.backbone_epochs);
    let pool = ModelPool::train(
        &noisy_train,
        &[
            Architecture::resnet18(),
            Architecture::resnet34(),
            Architecture::resnet50(),
            Architecture::densenet121(),
        ],
        &backbone,
        &mut rng,
    );
    let best_vanilla = pool
        .iter()
        .map(|m| m.evaluate(&split.test))
        .max_by(|a, b| a.accuracy.partial_cmp(&b.accuracy).unwrap_or(std::cmp::Ordering::Equal))
        .expect("non-empty pool");

    let noisy_split = muffin_data::DatasetSplit {
        train: noisy_train,
        val: split.val.clone(),
        test: split.test.clone(),
    };
    let config =
        SearchConfig::paper(&["age", "site"]).with_episodes((scale.episodes / 2).max(10));
    let search = MuffinSearch::new(pool, noisy_split, config).expect("search setup");
    let outcome = search.run(&mut rng).expect("search runs");
    let fusing = search.rebuild(outcome.best()).expect("rebuild");
    let muffin_eval = fusing.evaluate(search.pool(), &split.test);

    table.row_owned(vec![
        label.to_string(),
        format!("{:.2}%", best_vanilla.accuracy * 100.0),
        format!("{:.3}", best_vanilla.attribute("age").unwrap().unfairness),
        format!("{:.3}", best_vanilla.attribute("site").unwrap().unfairness),
        format!("{:.2}%", muffin_eval.accuracy * 100.0),
        format!("{:.3}", muffin_eval.attribute("age").unwrap().unfairness),
        format!("{:.3}", muffin_eval.attribute("site").unwrap().unfairness),
    ]);
}

fn main() {
    let scale = Scale::from_env();
    print_header("Extension: Muffin under training-label noise", scale);

    let mut table = TextTable::new(&[
        "condition", "vanilla acc", "van U_age", "van U_site", "muffin acc", "muf U_age",
        "muf U_site",
    ]);
    run_condition("clean", |d, _| d.clone(), scale, &mut table);
    run_condition(
        "uniform 10%",
        |d, rng| d.with_label_noise(0.10, rng),
        scale,
        &mut table,
    );
    run_condition(
        "uniform 20%",
        |d, rng| d.with_label_noise(0.20, rng),
        scale,
        &mut table,
    );
    run_condition(
        "targeted 30% on old age groups",
        |d, rng| {
            let age = d.schema().by_name("age").expect("age");
            d.with_group_label_noise(age, &[4, 5], 0.30, rng)
        },
        scale,
        &mut table,
    );
    println!("{table}");
    println!("expected shape: accuracy degrades gracefully with noise; Muffin keeps its");
    println!("advantage over the best vanilla model in every condition, though targeted");
    println!("noise on the unprivileged groups erodes the fairness gain the most.");
}
