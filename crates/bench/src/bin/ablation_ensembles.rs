//! **Combiner ablation** — the learned, fairness-aware muffin head vs the
//! naive ways of uniting the same two models: majority vote, mean
//! probability, max probability, plus the oracle upper bound. The muffin
//! head should dominate the naive combiners on fairness at comparable
//! accuracy because it is trained on the weighted unprivileged proxy.

use muffin::{
    FusingStructure, HeadSpec, HeadTrainConfig, PrivilegeMap, ProxyDataset, TextTable,
};
use muffin_bench::{isic_context, print_header};
use muffin_models::{oracle_accuracy, Ensemble, EnsembleRule};
use muffin_nn::Activation;
use muffin_tensor::Rng64;

fn main() {
    let ctx = isic_context();
    print_header("Ablation: muffin head vs naive combiners", ctx.scale);

    let age = ctx.dataset.schema().by_name("age").expect("age");
    let site = ctx.dataset.schema().by_name("site").expect("site");
    let privilege = PrivilegeMap::infer(&ctx.pool, &ctx.split.val, &[age, site], 0.02);
    let proxy = ProxyDataset::build(&ctx.split.train, &privilege).expect("proxy");

    let a = ctx.pool.by_name("ResNet-50").expect("in pool");
    let b = ctx.pool.by_name("ResNet-34").expect("in pool");
    println!("pair: {} + {}\n", a.name(), b.name());

    let mut table = TextTable::new(&["combiner", "acc", "U_age", "U_site"]);
    for model in [a, b] {
        let e = model.evaluate(&ctx.split.test);
        table.row_owned(vec![
            format!("single: {}", model.name()),
            format!("{:.2}%", e.accuracy * 100.0),
            format!("{:.4}", e.attribute("age").unwrap().unfairness),
            format!("{:.4}", e.attribute("site").unwrap().unfairness),
        ]);
    }

    for rule in
        [EnsembleRule::MajorityVote, EnsembleRule::MeanProbability, EnsembleRule::MaxProbability]
    {
        let ensemble = Ensemble::new(vec![a.clone(), b.clone()], rule);
        let e = ensemble.evaluate(&ctx.split.test);
        table.row_owned(vec![
            format!("{rule:?}"),
            format!("{:.2}%", e.accuracy * 100.0),
            format!("{:.4}", e.attribute("age").unwrap().unfairness),
            format!("{:.4}", e.attribute("site").unwrap().unfairness),
        ]);
    }

    let mut rng = Rng64::seed(777);
    let indices =
        vec![ctx.pool.index_of(a.name()).expect("a"), ctx.pool.index_of(b.name()).expect("b")];
    let mut fusing = FusingStructure::new(
        indices,
        HeadSpec::new(vec![16, 12, 8], Activation::Relu),
        &ctx.pool,
        &mut rng,
    )
    .expect("valid structure");
    fusing.train_head(&ctx.pool, &ctx.split.train, &proxy, &HeadTrainConfig::default(), &mut rng);
    let e = fusing.evaluate(&ctx.pool, &ctx.split.test);
    table.row_owned(vec![
        "muffin head (weighted proxy)".into(),
        format!("{:.2}%", e.accuracy * 100.0),
        format!("{:.4}", e.attribute("age").unwrap().unfairness),
        format!("{:.4}", e.attribute("site").unwrap().unfairness),
    ]);

    let oracle = oracle_accuracy(&[a, b], &ctx.split.test);
    table.row_owned(vec![
        "oracle (upper bound)".into(),
        format!("{:.2}%", oracle * 100.0),
        "—".into(),
        "—".into(),
    ]);
    println!("{table}");
    println!("reading: the oracle bounds every combiner; mean-probability averaging is a");
    println!("strong baseline on accuracy. The muffin head's edge comes from the *search*");
    println!("(pairing + head shape chosen for the Eq. 3 reward) and from targeting the");
    println!("unprivileged groups — a fixed pair with a fixed head, as here, need not beat");
    println!("naive averaging. Compare with the searched candidates in fig5.");
}
