//! **Extension: three-dimensional fairness.** The paper evaluates Muffin
//! with K = 2 unfair attributes; its formulation (Eq. 1/3, Algorithm 1) is
//! defined for any K. This experiment optimises **age, site and gender
//! simultaneously** and verifies the framework degrades gracefully: gender
//! is nearly fair already, so its reward term is large and roughly
//! constant, and the search should still improve age and site.

use muffin::{MuffinSearch, SearchConfig, TextTable};
use muffin_bench::{isic_context, print_header};

fn main() {
    let mut ctx = isic_context();
    print_header("Extension: optimising three attributes simultaneously", ctx.scale);

    let config =
        SearchConfig::paper(&["age", "site", "gender"]).with_episodes(ctx.scale.episodes);
    let search =
        MuffinSearch::new(ctx.pool.clone(), ctx.split.clone(), config).expect("search setup");
    println!(
        "proxy covers {} samples; targeted attributes: {:?}\n",
        search.proxy().len(),
        search.config().target_attributes
    );
    let outcome = search.run(&mut ctx.rng).expect("search runs");

    let mut table =
        TextTable::new(&["candidate", "acc", "U_age", "U_site", "U_gender", "reward"]);
    // Reference: the strongest vanilla model by accuracy.
    let best_vanilla = ctx
        .pool
        .iter()
        .take(ctx.vanilla_count)
        .map(|m| m.evaluate(&ctx.split.test))
        .max_by(|a, b| a.accuracy.partial_cmp(&b.accuracy).unwrap_or(std::cmp::Ordering::Equal))
        .expect("non-empty pool");
    table.row_owned(vec![
        format!("best vanilla ({})", best_vanilla.model),
        format!("{:.2}%", best_vanilla.accuracy * 100.0),
        format!("{:.4}", best_vanilla.attribute("age").unwrap().unfairness),
        format!("{:.4}", best_vanilla.attribute("site").unwrap().unfairness),
        format!("{:.4}", best_vanilla.attribute("gender").unwrap().unfairness),
        "·".into(),
    ]);

    for (label, record) in [
        ("Muffin best-reward", Some(outcome.best())),
        ("Muffin best age", outcome.best_united_for_attribute(0)),
        ("Muffin best site", outcome.best_united_for_attribute(1)),
        ("Muffin best balanced", outcome.best_united_balanced()),
    ] {
        let Some(record) = record else { continue };
        let fusing = search.rebuild(record).expect("rebuild");
        let e = fusing.evaluate(search.pool(), &ctx.split.test);
        table.row_owned(vec![
            format!("{label} ({})", record.model_names.join("+")),
            format!("{:.2}%", e.accuracy * 100.0),
            format!("{:.4}", e.attribute("age").unwrap().unfairness),
            format!("{:.4}", e.attribute("site").unwrap().unfairness),
            format!("{:.4}", e.attribute("gender").unwrap().unfairness),
            format!("{:.3}", record.reward),
        ]);
    }
    println!("{table}");
    println!("expected shape: gender stays near its (already fair) level while age and");
    println!("site improve — adding an already-fair attribute does not break the search.");
}
