//! **Consensus-gating ablation** — the paper's fusing structure leaves
//! unanimous body predictions untouched and lets the head arbitrate only
//! disagreements. This ablation re-evaluates the same trained structure
//! with gating disabled (head decides everything), showing why gating
//! protects overall accuracy.

use muffin::{
    FusingStructure, HeadSpec, HeadTrainConfig, PrivilegeMap, ProxyDataset, TextTable,
};
use muffin_bench::{isic_context, print_header};
use muffin_nn::Activation;
use muffin_tensor::Rng64;

fn main() {
    let ctx = isic_context();
    print_header("Ablation: consensus gating on vs off", ctx.scale);

    let age = ctx.dataset.schema().by_name("age").expect("age");
    let site = ctx.dataset.schema().by_name("site").expect("site");
    let privilege = PrivilegeMap::infer(&ctx.pool, &ctx.split.val, &[age, site], 0.02);
    let proxy = ProxyDataset::build(&ctx.split.train, &privilege).expect("proxy");

    let pairs = [
        ("ResNet-50 + ResNet-34", vec!["ResNet-50", "ResNet-34"]),
        ("ResNet-18 + DenseNet121+D(site)", vec!["ResNet-18", "DenseNet121+D(site)"]),
    ];
    let mut table =
        TextTable::new(&["pair", "gating", "acc", "U_age", "U_site", "head decides"]);
    for (label, names) in pairs {
        let indices: Vec<usize> =
            names.iter().map(|n| ctx.pool.index_of(n).expect("in pool")).collect();
        let mut rng = Rng64::seed(4242);
        let mut fusing = FusingStructure::new(
            indices,
            HeadSpec::new(vec![16, 12, 8], Activation::Relu),
            &ctx.pool,
            &mut rng,
        )
        .expect("valid structure");
        fusing.train_head(&ctx.pool, &ctx.split.train, &proxy, &HeadTrainConfig::default(), &mut rng);

        // Fraction of test samples where the body disagrees (head's share).
        let preds: Vec<Vec<usize>> = fusing
            .model_indices()
            .iter()
            .map(|&i| ctx.pool.get(i).expect("valid").predict(ctx.split.test.features()))
            .collect();
        let disagreements = (0..ctx.split.test.len())
            .filter(|&s| preds.iter().any(|p| p[s] != preds[0][s]))
            .count();
        let share = disagreements as f32 / ctx.split.test.len() as f32;

        for gated in [true, false] {
            fusing.set_consensus_gating(gated);
            let e = fusing.evaluate(&ctx.pool, &ctx.split.test);
            table.row_owned(vec![
                label.to_string(),
                if gated { "on".into() } else { "off".into() },
                format!("{:.2}%", e.accuracy * 100.0),
                format!("{:.4}", e.attribute("age").unwrap().unfairness),
                format!("{:.4}", e.attribute("site").unwrap().unfairness),
                if gated { format!("{:.1}% of samples", share * 100.0) } else { "100%".into() },
            ]);
        }
    }
    println!("{table}");
    println!("with gating the head only touches disagreement samples, so the bodies'");
    println!("consensus accuracy on easy (mostly privileged) data cannot be damaged.");
}
