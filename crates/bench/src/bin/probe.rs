//! Diagnostic probe: checks that the full pipeline reproduces the paper's
//! headline shape — Muffin improves *both* unfair attributes at once and
//! gains accuracy on small backbones.

use muffin::{MuffinSearch, SearchConfig};
use muffin_data::IsicLike;
use muffin_models::{Architecture, BackboneConfig, ModelPool};
use muffin_tensor::Rng64;

fn main() {
    let episodes: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(80);
    let mut rng = Rng64::seed(7);
    let ds = IsicLike::new().generate(&mut rng);
    let split = ds.split_default(&mut rng);
    let cfg = BackboneConfig::default();

    let archs = [
        Architecture::shufflenet_v2_x1_0(),
        Architecture::mobilenet_v3_small(),
        Architecture::mobilenet_v2(),
        Architecture::densenet121(),
        Architecture::resnet18(),
        Architecture::resnet34(),
        Architecture::resnet50(),
        Architecture::mobilenet_v3_large(),
    ];
    let t0 = std::time::Instant::now();
    let mut pool = ModelPool::train(&split.train, &archs, &cfg, &mut rng);
    // Single-attribute-optimised variants join the pool: the paper's
    // pairings include e.g. an "optimized DenseNet121".
    let age = ds.schema().by_name("age").unwrap();
    let site = ds.schema().by_name("site").unwrap();
    use muffin_models::FairnessMethod;
    for (arch, method, attr) in [
        (Architecture::densenet121(), FairnessMethod::DataBalancing, site),
        (Architecture::resnet18(), FairnessMethod::DataBalancing, age),
        (Architecture::mobilenet_v3_large(), FairnessMethod::FairLoss, site),
        (Architecture::resnet34(), FairnessMethod::FairLoss, age),
    ] {
        pool.push(method.apply(&arch, &split.train, attr, &cfg, &mut rng));
    }
    println!("pool trained in {:?}", t0.elapsed());

    for m in pool.iter() {
        let e = m.evaluate(&split.test);
        println!(
            "{:24} acc {:.3}  U_age {:.3}  U_site {:.3}",
            e.model,
            e.accuracy,
            e.attribute("age").unwrap().unfairness,
            e.attribute("site").unwrap().unfairness,
        );
    }

    let search_cfg = SearchConfig::paper(&["age", "site"]).with_episodes(episodes);
    let search = MuffinSearch::new(pool, split.clone(), search_cfg).expect("search setup");
    println!(
        "privilege: {:?}\nproxy size {} / train {}",
        search.privilege(),
        search.proxy().len(),
        split.train.len()
    );
    let t1 = std::time::Instant::now();
    let outcome = search.run(&mut rng).expect("search");
    println!(
        "{} episodes in {:?} ({} distinct candidates)",
        episodes,
        t1.elapsed(),
        outcome.distinct().len()
    );

    // Evaluate notable candidates on the TEST split.
    for (label, record) in [
        ("Muffin-Net (reward)", Some(outcome.best())),
        ("Muffin-Age", outcome.best_for_attribute(0)),
        ("Muffin-Site", outcome.best_for_attribute(1)),
        ("Muffin-Balance", outcome.best_balanced()),
    ] {
        let Some(record) = record else { continue };
        let fusing = search.rebuild(record).expect("rebuild");
        let eval = fusing.evaluate(search.pool(), &split.test);
        println!(
            "{label:20} body {:?} head {} | test acc {:.3} U_age {:.3} U_site {:.3}",
            record.model_names,
            record.head_desc,
            eval.accuracy,
            eval.attribute("age").unwrap().unfairness,
            eval.attribute("site").unwrap().unfairness,
        );
    }
}
