//! **Extension: distilling Muffin back to one model.** Figure 9(b) shows
//! the fused system's parameter count exploding with body size. This
//! extension distils the searched Muffin-Net into a single student MLP and
//! measures how much of the fairness and accuracy benefit survives at a
//! tiny fraction of the parameters.

use muffin::{distill_student, DistillConfig, MuffinSearch, SearchConfig, TextTable};
use muffin_bench::{isic_context, print_header};

fn main() {
    let mut ctx = isic_context();
    print_header("Extension: distilling the fused model into one student", ctx.scale);

    let config = SearchConfig::paper(&["age", "site"]).with_episodes(ctx.scale.episodes);
    let search =
        MuffinSearch::new(ctx.pool.clone(), ctx.split.clone(), config).expect("search setup");
    let outcome = search.run(&mut ctx.rng).expect("search runs");
    let best = outcome.best();
    let fusing = search.rebuild(best).expect("rebuild");
    println!("teacher: {} head {}\n", best.model_names.join(" + "), best.head_desc);

    let teacher_eval = fusing.evaluate(search.pool(), &ctx.split.test);
    let mut table = TextTable::new(&["model", "params", "acc", "U_age", "U_site"]);
    table.row_owned(vec![
        "fused teacher".into(),
        fusing.total_reported_params(search.pool()).to_string(),
        format!("{:.2}%", teacher_eval.accuracy * 100.0),
        format!("{:.4}", teacher_eval.attribute("age").unwrap().unfairness),
        format!("{:.4}", teacher_eval.attribute("site").unwrap().unfairness),
    ]);

    for hidden in [vec![32usize], vec![64, 32], vec![128, 64]] {
        let config = DistillConfig { student_hidden: hidden.clone(), ..DistillConfig::default() };
        let distilled =
            distill_student(&fusing, search.pool(), &ctx.split.train, &config, &mut ctx.rng)
                .expect("distills");
        let eval = distilled.evaluate(&ctx.split.test);
        table.row_owned(vec![
            format!("student {hidden:?} ({:.0}x smaller)", distilled.compression()),
            distilled.student_params().to_string(),
            format!("{:.2}%", eval.accuracy * 100.0),
            format!("{:.4}", eval.attribute("age").unwrap().unfairness),
            format!("{:.4}", eval.attribute("site").unwrap().unfairness),
        ]);
    }
    println!("{table}");
    println!("expected shape: a wide student retains most of the teacher's accuracy and a");
    println!("large part of its fairness at orders-of-magnitude fewer parameters.");
}
