//! Shared experiment context for the Muffin benchmark harness.
//!
//! Every `fig*`/`table1` binary regenerates one table or figure of the
//! paper. They all run on the same seeded substrate, built here: the
//! ISIC2019-like (or Fitzpatrick17K-like) synthetic dataset, the paper's
//! 64/16/20 split, and a model pool holding the vanilla zoo plus
//! single-attribute-optimised variants (the paper's pairings include e.g.
//! an "optimized DenseNet121").
//!
//! Set `MUFFIN_QUICK=1` to shrink datasets, training and episode budgets
//! for smoke runs; the printed shapes remain qualitatively comparable.

use muffin_data::{Dataset, DatasetSplit, FitzpatrickLike, IsicLike};
use muffin_models::{Architecture, BackboneConfig, FairnessMethod, ModelPool};
use muffin_tensor::Rng64;

pub mod timing;

/// The master seed every experiment derives from, printed in each header.
pub const EXPERIMENT_SEED: u64 = 7;

/// Scale knobs for one experiment run.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Dataset size.
    pub num_samples: usize,
    /// Backbone training epochs.
    pub backbone_epochs: u32,
    /// Reinforcement-learning episodes for searches.
    pub episodes: u32,
}

impl Scale {
    /// Full scale (default) or quick scale when `MUFFIN_QUICK=1`.
    pub fn from_env() -> Self {
        if quick_mode() {
            Self { num_samples: 2_000, backbone_epochs: 15, episodes: 30 }
        } else {
            Self { num_samples: 12_000, backbone_epochs: 60, episodes: 150 }
        }
    }
}

/// Whether `MUFFIN_QUICK=1` is set.
pub fn quick_mode() -> bool {
    std::env::var("MUFFIN_QUICK").is_ok_and(|v| v == "1")
}

/// A ready-to-run experiment context.
pub struct Context {
    /// The full generated dataset.
    pub dataset: Dataset,
    /// Paper split: 64/16/20.
    pub split: DatasetSplit,
    /// The trained model pool (vanilla zoo first, optimised variants after).
    pub pool: ModelPool,
    /// Number of vanilla (non-optimised) pool members.
    pub vanilla_count: usize,
    /// Backbone training configuration used.
    pub backbone: BackboneConfig,
    /// The scale the context was built at.
    pub scale: Scale,
    /// Experiment RNG, positioned after pool training.
    pub rng: Rng64,
}

/// The vanilla ISIC architectures, in Figure 1 order.
pub fn isic_zoo() -> Vec<Architecture> {
    vec![
        Architecture::shufflenet_v2_x1_0(),
        Architecture::mobilenet_v3_small(),
        Architecture::mobilenet_v2(),
        Architecture::densenet121(),
        Architecture::resnet18(),
        Architecture::resnet34(),
        Architecture::resnet50(),
        Architecture::mobilenet_v3_large(),
    ]
}

/// Builds the ISIC-like context: dataset, split, vanilla pool and the four
/// single-attribute-optimised variants used across the experiments.
pub fn isic_context() -> Context {
    let scale = Scale::from_env();
    let mut rng = Rng64::seed(EXPERIMENT_SEED);
    let dataset = IsicLike::new().with_num_samples(scale.num_samples).generate(&mut rng);
    let split = dataset.split_default(&mut rng);
    let backbone = BackboneConfig::default().with_epochs(scale.backbone_epochs);

    let zoo = isic_zoo();
    let mut pool = ModelPool::train(&split.train, &zoo, &backbone, &mut rng);
    let vanilla_count = pool.len();

    let age = dataset.schema().by_name("age").expect("age attribute");
    let site = dataset.schema().by_name("site").expect("site attribute");
    for (arch, method, attr) in [
        (Architecture::densenet121(), FairnessMethod::DataBalancing, site),
        (Architecture::resnet18(), FairnessMethod::DataBalancing, age),
        (Architecture::mobilenet_v3_large(), FairnessMethod::FairLoss, site),
        (Architecture::resnet34(), FairnessMethod::FairLoss, age),
    ] {
        pool.push(method.apply(&arch, &split.train, attr, &backbone, &mut rng));
    }

    Context { dataset, split, pool, vanilla_count, backbone, scale, rng }
}

/// The Fitzpatrick pool of the paper's Section 4.5: "ResNet, ShuffleNet
/// and MobileNet".
pub fn fitzpatrick_zoo() -> Vec<Architecture> {
    vec![
        Architecture::resnet18(),
        Architecture::resnet34(),
        Architecture::resnet50(),
        Architecture::shufflenet_v2_x0_5(),
        Architecture::shufflenet_v2_x1_0(),
        Architecture::mobilenet_v2(),
        Architecture::mobilenet_v3_small(),
        Architecture::mobilenet_v3_large(),
    ]
}

/// Builds the Fitzpatrick17K-like context for the Section 4.5 validation.
pub fn fitzpatrick_context() -> Context {
    let scale = Scale::from_env();
    let mut rng = Rng64::seed(EXPERIMENT_SEED + 1);
    let dataset =
        FitzpatrickLike::new().with_num_samples(scale.num_samples.min(7_000)).generate(&mut rng);
    let split = dataset.split_default(&mut rng);
    let backbone = BackboneConfig::default().with_epochs(scale.backbone_epochs);

    let zoo = fitzpatrick_zoo();
    let mut pool = ModelPool::train(&split.train, &zoo, &backbone, &mut rng);
    let vanilla_count = pool.len();

    let tone = dataset.schema().by_name("skin_tone").expect("skin_tone attribute");
    let lesion = dataset.schema().by_name("type").expect("type attribute");
    for (arch, method, attr) in [
        (Architecture::resnet18(), FairnessMethod::DataBalancing, tone),
        (Architecture::mobilenet_v3_large(), FairnessMethod::FairLoss, lesion),
    ] {
        pool.push(method.apply(&arch, &split.train, attr, &backbone, &mut rng));
    }

    Context { dataset, split, pool, vanilla_count, backbone, scale, rng }
}

/// Directory where experiment binaries drop rendered SVG figures
/// (`results/plots/` under the workspace root, created on demand).
pub fn plots_dir() -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/plots");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Prints the standard experiment header.
pub fn print_header(title: &str, scale: Scale) {
    println!("=== {title} ===");
    println!(
        "seed {EXPERIMENT_SEED} | {} samples | {} backbone epochs | {} episodes{}",
        scale.num_samples,
        scale.backbone_epochs,
        scale.episodes,
        if quick_mode() { " (QUICK)" } else { "" }
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoos_have_eight_members_each() {
        assert_eq!(isic_zoo().len(), 8);
        assert_eq!(fitzpatrick_zoo().len(), 8);
    }

    #[test]
    fn full_scale_exceeds_quick_scale() {
        let full = Scale { num_samples: 8_000, backbone_epochs: 60, episodes: 150 };
        let quick = Scale { num_samples: 2_000, backbone_epochs: 15, episodes: 30 };
        assert!(full.num_samples > quick.num_samples);
        assert!(full.episodes > quick.episodes);
    }
}
