//! Benches for the RNN controller: sampling episodes and the Eq. 4
//! REINFORCE update, with the baseline ablation called out in `DESIGN.md`
//! (EMA baseline vs no baseline, i.e. `baseline_decay = 0`).

use muffin::{ControllerConfig, RnnController, SearchSpace};
use muffin_bench::timing::{black_box, Harness};
use muffin_tensor::Rng64;

fn bench_sampling(h: &mut Harness) {
    let mut rng = Rng64::seed(20);
    let space = SearchSpace::paper_default(12);
    let controller = RnnController::new(space, ControllerConfig::default(), &mut rng);
    h.bench("controller_sample", || black_box(controller.sample(&mut rng)));
    h.bench("controller_greedy", || black_box(controller.greedy()));
}

fn bench_update(h: &mut Harness) {
    let space = SearchSpace::paper_default(12);
    for (label, config) in [
        ("ema_baseline", ControllerConfig::default()),
        ("no_baseline", ControllerConfig { baseline_decay: 0.0, ..ControllerConfig::default() }),
    ] {
        let mut rng = Rng64::seed(21);
        let mut controller = RnnController::new(space.clone(), config, &mut rng);
        h.bench(&format!("controller_update/{label}"), || {
            let episode = controller.sample(&mut rng);
            black_box(controller.update(&episode, 1.5));
        });
    }
}

fn main() {
    let mut h = Harness::new("controller");
    bench_sampling(&mut h);
    bench_update(&mut h);
    h.finish();
}
