//! Criterion benches for the RNN controller: sampling episodes and the
//! Eq. 4 REINFORCE update, with the baseline ablation called out in
//! `DESIGN.md` (EMA baseline vs no baseline, i.e. `baseline_decay = 0`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use muffin::{ControllerConfig, RnnController, SearchSpace};
use muffin_tensor::Rng64;

fn bench_sampling(c: &mut Criterion) {
    let mut rng = Rng64::seed(20);
    let space = SearchSpace::paper_default(12);
    let controller = RnnController::new(space, ControllerConfig::default(), &mut rng);
    c.bench_function("controller_sample", |bench| {
        bench.iter(|| black_box(controller.sample(&mut rng)));
    });
    c.bench_function("controller_greedy", |bench| {
        bench.iter(|| black_box(controller.greedy()));
    });
}

fn bench_update(c: &mut Criterion) {
    let space = SearchSpace::paper_default(12);
    let mut group = c.benchmark_group("controller_update");
    for (label, config) in [
        ("ema_baseline", ControllerConfig::default()),
        ("no_baseline", ControllerConfig { baseline_decay: 0.0, ..ControllerConfig::default() }),
    ] {
        group.bench_function(label, |bench| {
            let mut rng = Rng64::seed(21);
            let mut controller = RnnController::new(space.clone(), config, &mut rng);
            bench.iter(|| {
                let episode = controller.sample(&mut rng);
                black_box(controller.update(&episode, 1.5));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling, bench_update);
criterion_main!(benches);
