//! Benches for the Muffin search loop — the single episode that the
//! paper's 500-episode budget is made of, plus the serial-vs-parallel
//! REINFORCE batch evaluation whose speedup is tracked across PRs (see
//! `DESIGN.md` §7): compare `search/reinforce_batch8/serial` against
//! `search/reinforce_batch8/parallel_4w` in the suite JSON.

use muffin::{
    multi_fairness_reward, MuffinSearch, RewardConfig, RnnController, SearchConfig, WorkerPool,
};
use muffin_bench::timing::{black_box, Harness};
use muffin_data::IsicLike;
use muffin_models::{Architecture, BackboneConfig, ModelPool};
use muffin_tensor::Rng64;

fn fast_search(episodes: u32, reinforce_batch: usize) -> MuffinSearch {
    let mut rng = Rng64::seed(30);
    let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
    let pool = ModelPool::train(
        &split.train,
        &[
            Architecture::resnet18(),
            Architecture::densenet121(),
            Architecture::shufflenet_v2_x1_0(),
        ],
        &BackboneConfig::fast(),
        &mut rng,
    );
    let config = SearchConfig::fast(&["age", "site"])
        .with_episodes(episodes)
        .with_reinforce_batch(reinforce_batch);
    MuffinSearch::new(pool, split, config).expect("search setup")
}

fn bench_full_episode(h: &mut Harness) {
    let search = fast_search(30, 1);
    let space = search.space();
    let mut rng = Rng64::seed(31);
    let controller = RnnController::new(space.clone(), search.config().controller, &mut rng);

    h.sample_size(5);
    h.bench("search/one_episode_train_and_reward", || {
        let sampled = controller.sample(&mut rng);
        let candidate = space.decode(&sampled.actions).expect("in range");
        let (_, eval) = search
            .evaluate_candidate(&candidate, &search.split().val, 1234)
            .expect("candidate evaluates");
        black_box(multi_fairness_reward(&eval, &["age", "site"], RewardConfig::default()));
    });
}

fn bench_reinforce_batch_parallelism(h: &mut Harness) {
    // One REINFORCE batch of 8 episodes on the fast config: the candidate
    // evaluations are independent, so the pooled run should approach the
    // worker count until the distinct-candidate supply runs out.
    let search = fast_search(8, 8);
    h.sample_size(5);
    for (label, workers) in [("serial", 1usize), ("parallel_4w", 4)] {
        let pool = WorkerPool::new(workers);
        h.bench(&format!("search/reinforce_batch8/{label}"), || {
            // Fresh RNG per run: both variants replay the identical
            // trajectory, so the timings differ only by scheduling.
            let mut rng = Rng64::seed(77);
            black_box(search.run_with_pool(&mut rng, &pool).expect("search runs"))
        });
    }
}

fn main() {
    let mut h = Harness::new("search_episode");
    bench_full_episode(&mut h);
    bench_reinforce_batch_parallelism(&mut h);
    h.finish();
}
