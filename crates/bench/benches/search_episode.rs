//! Bench for one full Muffin search episode — sample a candidate, train
//! its head on the proxy dataset, evaluate, reward — the unit of cost the
//! paper's 500-episode budget is made of.

use muffin::{
    multi_fairness_reward, MuffinSearch, RewardConfig, RnnController, SearchConfig,
};
use muffin_bench::timing::{black_box, Harness};
use muffin_data::IsicLike;
use muffin_models::{Architecture, BackboneConfig, ModelPool};
use muffin_tensor::Rng64;

fn bench_full_episode(h: &mut Harness) {
    let mut rng = Rng64::seed(30);
    let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
    let pool = ModelPool::train(
        &split.train,
        &[
            Architecture::resnet18(),
            Architecture::densenet121(),
            Architecture::shufflenet_v2_x1_0(),
        ],
        &BackboneConfig::fast(),
        &mut rng,
    );
    let config = SearchConfig::fast(&["age", "site"]);
    let search = MuffinSearch::new(pool, split, config).expect("search setup");
    let space = search.space();
    let controller =
        RnnController::new(space.clone(), search.config().controller, &mut rng);

    h.sample_size(5);
    h.bench("search/one_episode_train_and_reward", || {
        let sampled = controller.sample(&mut rng);
        let candidate = space.decode(&sampled.actions).expect("in range");
        let (_, eval) = search
            .evaluate_candidate(&candidate, &search.split().val, 1234)
            .expect("candidate evaluates");
        black_box(multi_fairness_reward(&eval, &["age", "site"], RewardConfig::default()));
    });
}

fn main() {
    let mut h = Harness::new("search_episode");
    bench_full_episode(&mut h);
    h.finish();
}
