//! Benches for the neural-network substrate: forward/backward passes and
//! the Eq. 2 weighted-MSE loss the muffin head trains with.

use muffin_bench::timing::{black_box, Harness};
use muffin_nn::{one_hot, weighted_cross_entropy_loss, weighted_mse_loss, Mlp, MlpSpec};
use muffin_tensor::{Init, Matrix, Rng64};

fn bench_mlp_passes(h: &mut Harness) {
    let mut rng = Rng64::seed(4);
    // A muffin-head-sized network on a 64-sample batch.
    let spec = MlpSpec::new(16, &[16, 18, 12, 8], 8);
    let mlp = Mlp::new(&spec, &mut rng);
    let x = Matrix::random(64, 16, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
    h.bench("head_forward/64x16", || black_box(mlp.forward(&x)));
    let mut mlp_bw = mlp.clone();
    h.bench("head_forward_backward/64x16", || {
        let (logits, cache) = mlp_bw.forward_train(&x);
        let grad = logits.scaled(1.0 / 64.0);
        muffin_nn::Parameterized::zero_grad(&mut mlp_bw);
        black_box(mlp_bw.backward(&cache, &grad));
    });
}

fn bench_losses(h: &mut Harness) {
    let mut rng = Rng64::seed(5);
    let logits = Matrix::random(256, 8, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
    let labels: Vec<usize> = (0..256).map(|i| i % 8).collect();
    let targets = one_hot(&labels, 8);
    let weights: Vec<f32> = (0..256).map(|i| 1.0 + (i % 3) as f32).collect();
    h.bench("weighted_mse/256x8", || black_box(weighted_mse_loss(&logits, &targets, &weights)));
    h.bench("weighted_cross_entropy/256x8", || {
        black_box(weighted_cross_entropy_loss(&logits, &labels, Some(&weights)))
    });
}

fn main() {
    let mut h = Harness::new("nn_training");
    bench_mlp_passes(&mut h);
    bench_losses(&mut h);
    h.finish();
}
