//! Benches for the model-fusing structure, including the consensus-gating
//! ablation called out in `DESIGN.md`: gated prediction vs head-always
//! prediction, and Algorithm-1-weighted vs uniform head training.

use muffin::{FusingStructure, HeadSpec, HeadTrainConfig, PrivilegeMap, ProxyDataset, WorkerPool};
use muffin_bench::timing::{black_box, Harness};
use muffin_data::{DatasetSplit, IsicLike};
use muffin_models::{Architecture, BackboneConfig, ModelPool};
use muffin_nn::Activation;
use muffin_tensor::Rng64;

fn fixture() -> (ModelPool, DatasetSplit, ProxyDataset) {
    let mut rng = Rng64::seed(10);
    let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
    let pool = ModelPool::train(
        &split.train,
        &[Architecture::resnet18(), Architecture::densenet121()],
        &BackboneConfig::fast(),
        &mut rng,
    );
    let age = split.train.schema().by_name("age").expect("age");
    let site = split.train.schema().by_name("site").expect("site");
    let privilege = PrivilegeMap::infer(&pool, &split.val, &[age, site], 0.02);
    let proxy = ProxyDataset::build(&split.train, &privilege).expect("proxy");
    (pool, split, proxy)
}

fn bench_head_training(h: &mut Harness) {
    let (pool, split, proxy) = fixture();
    let uniform = proxy.with_uniform_weights();
    h.sample_size(5);
    for (label, data) in [("weighted", &proxy), ("uniform", &uniform)] {
        h.bench(&format!("head_training/{label}"), || {
            let mut rng = Rng64::seed(99);
            let mut fusing = FusingStructure::new(
                vec![0, 1],
                HeadSpec::new(vec![16, 12], Activation::Relu),
                &pool,
                &mut rng,
            )
            .expect("valid");
            fusing.train_head(&pool, &split.train, data, &HeadTrainConfig::fast(), &mut rng);
            black_box(fusing);
        });
    }
}

fn bench_prediction_gating_ablation(h: &mut Harness) {
    let (pool, split, proxy) = fixture();
    let mut rng = Rng64::seed(42);
    let mut fusing = FusingStructure::new(
        vec![0, 1],
        HeadSpec::new(vec![16, 12], Activation::Relu),
        &pool,
        &mut rng,
    )
    .expect("valid");
    fusing.train_head(&pool, &split.train, &proxy, &HeadTrainConfig::fast(), &mut rng);

    h.sample_size(10);
    h.bench("fused_prediction/consensus_gated", || {
        black_box(fusing.predict(&pool, split.test.features()))
    });
    // Row-chunked batch inference on the shared worker pool; serial vs
    // 4 workers is tracked in the suite JSON alongside the gated paths.
    let workers = WorkerPool::new(4);
    h.bench("fused_prediction/consensus_gated_parallel_4w", || {
        black_box(fusing.predict_with(&pool, split.test.features(), &workers))
    });
    fusing.set_consensus_gating(false);
    h.bench("fused_prediction/head_always", || {
        black_box(fusing.predict(&pool, split.test.features()))
    });
    fusing.set_consensus_gating(true);
    // The search hot path: body outputs computed once up front, every
    // candidate prediction served from the cache.
    let cache = muffin::BodyOutputCache::new(&pool, split.test.features().clone());
    black_box(fusing.predict_cached(&cache)); // warm the slots
    h.bench("fused_prediction/body_cached", || {
        black_box(fusing.predict_cached(&cache))
    });
}

fn bench_proxy_build(h: &mut Harness) {
    let mut rng = Rng64::seed(11);
    let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
    let age = split.train.schema().by_name("age").expect("age");
    let site = split.train.schema().by_name("site").expect("site");
    let mut privilege = PrivilegeMap::new();
    privilege.set(age, vec![4, 5]);
    privilege.set(site, vec![5, 6, 7, 8]);
    h.bench("algorithm1_proxy_build", || {
        black_box(ProxyDataset::build(&split.train, &privilege).expect("proxy"))
    });
}

fn main() {
    let mut h = Harness::new("fusing");
    bench_head_training(&mut h);
    bench_prediction_gating_ablation(&mut h);
    bench_proxy_build(&mut h);
    h.finish();
}
