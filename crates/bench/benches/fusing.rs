//! Criterion benches for the model-fusing structure, including the
//! consensus-gating ablation called out in `DESIGN.md`: gated prediction
//! vs head-always prediction, and Algorithm-1-weighted vs uniform head
//! training.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use muffin::{FusingStructure, HeadSpec, HeadTrainConfig, PrivilegeMap, ProxyDataset};
use muffin_data::{DatasetSplit, IsicLike};
use muffin_models::{Architecture, BackboneConfig, ModelPool};
use muffin_nn::Activation;
use muffin_tensor::Rng64;

fn fixture() -> (ModelPool, DatasetSplit, ProxyDataset) {
    let mut rng = Rng64::seed(10);
    let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
    let pool = ModelPool::train(
        &split.train,
        &[Architecture::resnet18(), Architecture::densenet121()],
        &BackboneConfig::fast(),
        &mut rng,
    );
    let age = split.train.schema().by_name("age").expect("age");
    let site = split.train.schema().by_name("site").expect("site");
    let privilege = PrivilegeMap::infer(&pool, &split.val, &[age, site], 0.02);
    let proxy = ProxyDataset::build(&split.train, &privilege).expect("proxy");
    (pool, split, proxy)
}

fn bench_head_training(c: &mut Criterion) {
    let (pool, split, proxy) = fixture();
    let uniform = proxy.with_uniform_weights();
    let mut group = c.benchmark_group("head_training");
    group.sample_size(10);
    for (label, data) in [("weighted", &proxy), ("uniform", &uniform)] {
        group.bench_function(label, |bench| {
            bench.iter(|| {
                let mut rng = Rng64::seed(99);
                let mut fusing = FusingStructure::new(
                    vec![0, 1],
                    HeadSpec::new(vec![16, 12], Activation::Relu),
                    &pool,
                    &mut rng,
                )
                .expect("valid");
                fusing.train_head(&pool, &split.train, data, &HeadTrainConfig::fast(), &mut rng);
                black_box(fusing);
            });
        });
    }
    group.finish();
}

fn bench_prediction_gating_ablation(c: &mut Criterion) {
    let (pool, split, proxy) = fixture();
    let mut rng = Rng64::seed(42);
    let mut fusing = FusingStructure::new(
        vec![0, 1],
        HeadSpec::new(vec![16, 12], Activation::Relu),
        &pool,
        &mut rng,
    )
    .expect("valid");
    fusing.train_head(&pool, &split.train, &proxy, &HeadTrainConfig::fast(), &mut rng);

    let mut group = c.benchmark_group("fused_prediction");
    group.sample_size(20);
    group.bench_function("consensus_gated", |bench| {
        bench.iter(|| black_box(fusing.predict(&pool, split.test.features())));
    });
    fusing.set_consensus_gating(false);
    group.bench_function("head_always", |bench| {
        bench.iter(|| black_box(fusing.predict(&pool, split.test.features())));
    });
    group.finish();
}

fn bench_proxy_build(c: &mut Criterion) {
    let mut rng = Rng64::seed(11);
    let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
    let age = split.train.schema().by_name("age").expect("age");
    let site = split.train.schema().by_name("site").expect("site");
    let mut privilege = PrivilegeMap::new();
    privilege.set(age, vec![4, 5]);
    privilege.set(site, vec![5, 6, 7, 8]);
    c.bench_function("algorithm1_proxy_build", |bench| {
        bench.iter(|| black_box(ProxyDataset::build(&split.train, &privilege).expect("proxy")));
    });
}

criterion_group!(benches, bench_head_training, bench_prediction_gating_ablation, bench_proxy_build);
criterion_main!(benches);
