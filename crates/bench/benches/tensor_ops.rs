//! Criterion benches for the tensor substrate: the matmul and softmax
//! kernels every training loop in the workspace sits on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use muffin_tensor::{Init, Matrix, Rng64};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[16usize, 64, 128] {
        let mut rng = Rng64::seed(1);
        let a = Matrix::random(n, n, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
        let b = Matrix::random(n, n, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
        group.bench_with_input(BenchmarkId::new("square", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_matmul_transposed_variants(c: &mut Criterion) {
    let mut rng = Rng64::seed(2);
    let a = Matrix::random(256, 64, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
    let b = Matrix::random(256, 32, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
    let bt = Matrix::random(32, 64, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
    c.bench_function("matmul_tn/256x64_256x32", |bench| {
        bench.iter(|| black_box(a.matmul_tn(&b)));
    });
    c.bench_function("matmul_nt/256x64_32x64", |bench| {
        bench.iter(|| black_box(a.matmul_nt(&bt)));
    });
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = Rng64::seed(3);
    let logits = Matrix::random(512, 8, Init::ScaledNormal { std_dev: 2.0 }, &mut rng);
    c.bench_function("softmax_rows/512x8", |bench| {
        bench.iter(|| black_box(logits.softmax_rows()));
    });
    c.bench_function("argmax_rows/512x8", |bench| {
        bench.iter(|| black_box(logits.argmax_rows()));
    });
}

criterion_group!(benches, bench_matmul, bench_matmul_transposed_variants, bench_softmax);
criterion_main!(benches);
