//! Benches for the tensor substrate: the matmul and softmax kernels every
//! training loop in the workspace sits on.

use muffin_bench::timing::{black_box, Harness};
use muffin_tensor::{Init, Matrix, Rng64};

fn bench_matmul(h: &mut Harness) {
    for &n in &[16usize, 64, 128] {
        let mut rng = Rng64::seed(1);
        let a = Matrix::random(n, n, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
        let b = Matrix::random(n, n, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
        h.bench(&format!("matmul/square/{n}"), || black_box(a.matmul(&b)));
    }
    // The allocation-free variant the training loop uses: same kernel,
    // output buffer reused across calls.
    let mut rng = Rng64::seed(1);
    let a = Matrix::random(128, 128, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
    let b = Matrix::random(128, 128, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
    let mut out = Matrix::zeros(128, 128);
    h.bench("matmul_into/square/128", || {
        a.matmul_into(&b, &mut out);
        black_box(out.get(0, 0))
    });
}

/// Rows exercising the cache-blocked kernels on the shapes the tiling is
/// for: tile-aligned squares, ragged widths that force a padded stride,
/// and the transposed variants at a size where blocking matters.
fn bench_matmul_blocked(h: &mut Harness) {
    let mut rng = Rng64::seed(4);
    let mut out = Matrix::zeros(0, 0);

    // 100 is not a multiple of the lane width (stride pads 100 → 104) nor
    // of the 64-wide tiles, so this row covers the ragged-edge code paths.
    let a = Matrix::random(100, 100, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
    let b = Matrix::random(100, 100, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
    h.bench("matmul_blocked/ragged/100", || {
        a.matmul_into(&b, &mut out);
        black_box(out.get(0, 0))
    });

    // Batch-shaped product (tall-skinny times small), the head-training shape.
    let x = Matrix::random(512, 64, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
    let w = Matrix::random(64, 32, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
    h.bench("matmul_blocked/tall/512x64x32", || {
        x.matmul_into(&w, &mut out);
        black_box(out.get(0, 0))
    });

    let s = Matrix::random(128, 128, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
    let t = Matrix::random(128, 128, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
    h.bench("matmul_blocked/tn/128", || {
        s.matmul_tn_into(&t, &mut out);
        black_box(out.get(0, 0))
    });
    h.bench("matmul_blocked/nt/128", || {
        s.matmul_nt_into(&t, &mut out);
        black_box(out.get(0, 0))
    });
}

fn bench_matmul_transposed_variants(h: &mut Harness) {
    let mut rng = Rng64::seed(2);
    let a = Matrix::random(256, 64, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
    let b = Matrix::random(256, 32, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
    let bt = Matrix::random(32, 64, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
    h.bench("matmul_tn/256x64_256x32", || black_box(a.matmul_tn(&b)));
    h.bench("matmul_nt/256x64_32x64", || black_box(a.matmul_nt(&bt)));
}

fn bench_softmax(h: &mut Harness) {
    let mut rng = Rng64::seed(3);
    let logits = Matrix::random(512, 8, Init::ScaledNormal { std_dev: 2.0 }, &mut rng);
    h.bench("softmax_rows/512x8", || black_box(logits.softmax_rows()));
    h.bench("argmax_rows/512x8", || black_box(logits.argmax_rows()));
}

fn main() {
    let mut h = Harness::new("tensor_ops");
    bench_matmul(&mut h);
    bench_matmul_blocked(&mut h);
    bench_matmul_transposed_variants(&mut h);
    bench_softmax(&mut h);
    h.finish();
}
