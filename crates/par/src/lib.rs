//! Hermetic scoped thread pool for the Muffin workspace.
//!
//! `muffin-par` replaces what `rayon` would provide with the one primitive
//! the search actually needs: map a closure over a slice on a fixed number
//! of OS threads and collect the results **in input order**. It is built
//! entirely on `std` (`thread::scope`, an atomic work counter and an mpsc
//! channel), so the workspace stays dependency-free.
//!
//! Guarantees:
//!
//! - **Deterministic collection** — `WorkerPool::map` returns results
//!   indexed exactly like the input slice, independent of which worker ran
//!   which item or in what order they finished. A caller that feeds
//!   deterministic per-item inputs (e.g. pre-derived seeds) therefore gets
//!   bit-identical output at any worker count, including 1.
//! - **Panic propagation** — a panic inside the closure unwinds out of
//!   `map` on the calling thread (via `std::thread::scope`'s join) instead
//!   of deadlocking or being silently dropped.
//! - **No oversubscription** — at most `workers` threads run at once; the
//!   work queue is a single atomic counter, so items are handed out with
//!   no per-item allocation or locking.
//!
//! # Example
//!
//! ```
//! use muffin_par::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let squares = pool.map(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

#![deny(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};

/// Number of hardware threads, falling back to 1 where it cannot be
/// queried (the value `--workers` defaults to in the CLI).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `len` items into at most `chunks` contiguous, balanced ranges.
///
/// Every range is non-empty and the ranges cover `0..len` in order; sizes
/// differ by at most one, so workers finish at roughly the same time.
///
/// # Example
///
/// ```
/// use muffin_par::chunk_ranges;
///
/// assert_eq!(chunk_ranges(5, 2), vec![0..3, 3..5]);
/// assert_eq!(chunk_ranges(2, 8).len(), 2);
/// assert!(chunk_ranges(0, 3).is_empty());
/// ```
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 || chunks == 0 {
        return Vec::new();
    }
    let chunks = chunks.min(len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// A fixed-width scoped thread pool.
///
/// The pool holds no threads between calls: each [`WorkerPool::map`]
/// spawns its workers inside a `std::thread::scope`, which lets the closure
/// borrow from the caller's stack (the search borrows its model pool and
/// datasets) without `Arc` or `'static` bounds, and joins them before
/// returning. Spawn cost is microseconds against the multi-millisecond
/// candidate evaluations it schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool running `workers` threads per map (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// The single-threaded pool: `map` runs inline on the calling thread.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// A pool sized to [`available_parallelism`].
    pub fn auto() -> Self {
        Self::new(available_parallelism())
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether `map` runs inline without spawning threads.
    pub fn is_serial(&self) -> bool {
        self.workers == 1
    }

    /// Applies `f` to every item, returning results in input order.
    ///
    /// `f` receives the item index alongside the item so callers can pair
    /// results with pre-derived per-item state (seeds, labels) without
    /// capturing mutable bookkeeping.
    ///
    /// # Panics
    ///
    /// Re-raises (on the calling thread) any panic raised by `f` on a
    /// worker thread.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if self.workers == 1 || n <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n) {
                let tx = tx.clone();
                let (next, f) = (&next, &f);
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // A send can only fail if the receiver was dropped,
                    // which cannot happen while the scope is alive.
                    if tx.send((i, f(i, &items[i]))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            // The scope joins every worker here and re-raises the first
            // panic, so a poisoned map never returns partial results.
        });

        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            debug_assert!(slots[i].is_none(), "index {i} produced twice");
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every index mapped exactly once"))
            .collect()
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::auto()
    }
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue with **load-shedding**
/// admission: [`BoundedQueue::try_push`] never blocks — when the queue is
/// full the item comes straight back to the caller, which is the
/// backpressure signal a serving admission queue needs (reject loudly
/// rather than stall every client).
///
/// Consumers block in [`BoundedQueue::pop`] until an item arrives or the
/// queue is closed *and* drained, so a fixed set of long-lived worker
/// threads can loop on `pop` and exit cleanly at shutdown. Built on
/// `Mutex` + `Condvar` only.
///
/// # Example
///
/// ```
/// use muffin_par::BoundedQueue;
///
/// let q = BoundedQueue::new(2);
/// assert!(q.try_push(1).is_ok());
/// assert!(q.try_push(2).is_ok());
/// assert_eq!(q.try_push(3), Err(3)); // full: shed, never block
/// q.close();
/// assert_eq!(q.pop(), Some(1)); // close still drains queued items
/// assert_eq!(q.pop(), Some(2));
/// assert_eq!(q.pop(), None); // closed and empty
/// ```
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to enqueue `item` without blocking.
    ///
    /// # Errors
    ///
    /// Returns the item back when the queue is at capacity (the caller
    /// sheds the request) or already closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty but
    /// still open. Returns `None` once the queue is closed **and**
    /// drained — the worker-loop exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Dequeues the oldest item if one is ready, never blocking — the
    /// batching path: a worker takes one job via [`BoundedQueue::pop`]
    /// and then coalesces whatever else is already waiting.
    pub fn try_pop(&self) -> Option<T> {
        self.state.lock().expect("queue poisoned").items.pop_front()
    }

    /// Closes the queue: subsequent pushes fail, queued items still drain,
    /// and blocked consumers wake up (returning `None` once empty).
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..100).collect();
        // Make later items finish first so ordering must come from the
        // index bookkeeping, not completion order.
        let out = pool.map(&items, |_, &x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x * 3
        });
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn closure_sees_matching_index() {
        let pool = WorkerPool::new(3);
        let items = vec![10u64, 20, 30, 40, 50];
        let out = pool.map(&items, |i, &x| (i, x));
        for (i, (seen_i, x)) in out.iter().enumerate() {
            assert_eq!(*seen_i, i);
            assert_eq!(*x, items[i]);
        }
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let pool = WorkerPool::new(8);
        assert_eq!(pool.map(&Vec::<u32>::new(), |_, &x| x), Vec::<u32>::new());
        assert_eq!(pool.map(&[9u32], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn zero_workers_clamps_to_serial() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert!(pool.is_serial());
        assert_eq!(pool.map(&[1, 2, 3], |_, &x: &i32| x), vec![1, 2, 3]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let pool = WorkerPool::new(64);
        let out = pool.map(&[1u8, 2, 3], |_, &x| x as u32);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn worker_panic_propagates() {
        // Expected panics on worker threads would spam the test log via the
        // default hook; silence it for the duration.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..32).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map(&items, |_, &x| {
                if x == 13 {
                    panic!("unlucky item");
                }
                x
            })
        }));
        std::panic::set_hook(prev);
        assert!(caught.is_err(), "panic must unwind out of map");
    }

    #[test]
    fn auto_pool_has_at_least_one_worker() {
        assert!(WorkerPool::auto().workers() >= 1);
        assert!(available_parallelism() >= 1);
    }

    #[test]
    fn bounded_queue_sheds_when_full_and_drains_after_close() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.capacity(), 2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "full queue must shed");
        assert_eq!(q.len(), 2);
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_push(4), Err(4), "closed queue rejects pushes");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.pop(), None, "closed and drained");
        assert_eq!(q.try_pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn bounded_queue_zero_capacity_clamps_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.try_push(7).is_ok());
        assert_eq!(q.try_push(8), Err(8));
    }

    #[test]
    fn bounded_queue_blocked_consumers_wake_on_close() {
        let q = BoundedQueue::<u32>::new(4);
        std::thread::scope(|s| {
            let consumers: Vec<_> = (0..3)
                .map(|_| s.spawn(|| std::iter::from_fn(|| q.pop()).count()))
                .collect();
            for i in 0..10 {
                // Producers retry on shed so every item gets through.
                let mut item = i;
                loop {
                    match q.try_push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
            q.close();
            let consumed: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(consumed, 10, "every pushed item is consumed exactly once");
        });
    }

    #[test]
    fn bounded_queue_preserves_fifo_order() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 2, 5, 17, 100] {
            for chunks in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(len, chunks);
                let mut covered = 0;
                for (i, r) in ranges.iter().enumerate() {
                    assert_eq!(r.start, covered, "ranges must be contiguous");
                    assert!(
                        !r.is_empty(),
                        "range {i} empty for len={len} chunks={chunks}"
                    );
                    covered = r.end;
                }
                assert_eq!(covered, len);
                if len > 0 {
                    assert!(ranges.len() <= chunks.min(len));
                    let sizes: Vec<usize> = ranges.iter().map(|r| r.end - r.start).collect();
                    let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                    assert!(max - min <= 1, "unbalanced chunks: {sizes:?}");
                }
            }
        }
    }
}
