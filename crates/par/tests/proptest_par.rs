//! Property tests for `muffin-par`: the pooled map must be observationally
//! identical to a sequential map for every input length and worker count,
//! and a panicking stage must propagate instead of deadlocking.

use muffin_check::{check, prop_assert, prop_assert_eq, Config, Gen};
use muffin_par::{chunk_ranges, WorkerPool};

#[test]
fn pooled_map_equals_sequential_map() {
    check(
        "pooled map == sequential map",
        Config::cases(96),
        |g: &mut Gen| {
            // Lengths from empty to well past the worker count, worker
            // counts including 1 and counts larger than the input.
            let items = g.vec_f32(0..=48, -1e3, 1e3);
            let workers = g.usize_in(1..=12);
            (items, workers)
        },
        |(items, workers)| {
            let stage = |i: usize, x: &f32| (i as f32).mul_add(0.5, x.sin());
            let pooled = WorkerPool::new(*workers).map(items, stage);
            let sequential: Vec<f32> =
                items.iter().enumerate().map(|(i, x)| stage(i, x)).collect();
            prop_assert_eq!(pooled.len(), sequential.len());
            for (i, (p, s)) in pooled.iter().zip(&sequential).enumerate() {
                prop_assert_eq!(p.to_bits(), s.to_bits(), "index {} diverged", i);
            }
            Ok(())
        },
    );
}

#[test]
fn pooled_map_is_worker_count_invariant() {
    check(
        "map result independent of worker count",
        Config::cases(48),
        |g: &mut Gen| g.vec_usize(0..=32, 0..=1_000),
        |items| {
            let reference = WorkerPool::serial().map(items, |i, &x| x.wrapping_mul(i + 1));
            for workers in [2usize, 3, 5, 64] {
                let pooled = WorkerPool::new(workers).map(items, |i, &x| x.wrapping_mul(i + 1));
                prop_assert_eq!(&pooled, &reference, "workers={}", workers);
            }
            Ok(())
        },
    );
}

#[test]
fn panicking_stage_propagates_for_any_panic_site() {
    // Every case panics on purpose; silence the default hook so the run
    // does not spew dozens of expected backtraces.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    check(
        "panic propagates, no deadlock",
        Config::cases(32),
        |g: &mut Gen| {
            let len = g.usize_in(1..=24);
            let panic_at = g.usize_in(0..=len - 1);
            let workers = g.usize_in(1..=8);
            (len, panic_at, workers)
        },
        |&(len, panic_at, workers)| {
            let items: Vec<usize> = (0..len).collect();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                WorkerPool::new(workers).map(&items, |_, &x| {
                    if x == panic_at {
                        panic!("stage failed at {x}");
                    }
                    x * 2
                })
            }));
            prop_assert!(
                outcome.is_err(),
                "panic at {} with {} workers must unwind out of map",
                panic_at,
                workers
            );
            Ok(())
        },
    );
    std::panic::set_hook(prev);
}

#[test]
fn chunked_map_composes_to_full_map() {
    check(
        "chunk_ranges + per-chunk map == whole map",
        Config::cases(48),
        |g: &mut Gen| {
            let items = g.vec_f32(0..=40, -10.0, 10.0);
            let chunks = g.usize_in(1..=9);
            (items, chunks)
        },
        |(items, chunks)| {
            let pool = WorkerPool::new(*chunks);
            let ranges = chunk_ranges(items.len(), *chunks);
            let per_chunk = pool.map(&ranges, |_, range| {
                items[range.clone()].iter().map(|x| x * 2.0).collect::<Vec<f32>>()
            });
            let flat: Vec<f32> = per_chunk.into_iter().flatten().collect();
            let whole: Vec<f32> = items.iter().map(|x| x * 2.0).collect();
            prop_assert_eq!(flat, whole);
            Ok(())
        },
    );
}
