//! End-to-end process tests for the `muffin` binary: quiet runs must be
//! silent on stderr, `--verbose` must report progress there, and
//! `--trace-out` must produce a parseable event log that
//! `trace summarize` renders.

use muffin_trace::TraceLog;
use std::path::PathBuf;
use std::process::{Command, Output};

fn muffin(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_muffin"))
        .args(args)
        .output()
        .expect("spawn muffin binary")
}

fn tmp(name: &str) -> String {
    let dir: PathBuf = std::env::temp_dir().join("muffin_cli_process_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn quiet_search_is_silent_on_stderr_and_verbose_is_not() {
    let data = tmp("data.json");
    let pool = tmp("pool.json");
    let outcome = tmp("outcome.json");
    let trace = tmp("trace.json");

    let gen = muffin(&[
        "generate",
        "--samples",
        "300",
        "--seed",
        "3",
        "--out",
        &data,
    ]);
    assert!(
        gen.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&gen.stderr)
    );
    assert!(gen.stderr.is_empty(), "generate must not write to stderr");

    let train = muffin(&[
        "train-pool",
        "--data",
        &data,
        "--archs",
        "ResNet-18,DenseNet121",
        "--epochs",
        "2",
        "--out",
        &pool,
    ]);
    assert!(
        train.status.success(),
        "train-pool failed: {}",
        String::from_utf8_lossy(&train.stderr)
    );
    assert!(
        train.stderr.is_empty(),
        "train-pool must not write to stderr"
    );

    let search_args = |extra: &[&str]| {
        let mut v = vec![
            "search",
            "--data",
            &data,
            "--pool",
            &pool,
            "--attrs",
            "age,site",
            "--episodes",
            "2",
            "--out",
            &outcome,
        ];
        v.extend_from_slice(extra);
        v.iter().map(|s| s.to_string()).collect::<Vec<_>>()
    };

    // Quiet run: stderr stays empty.
    let quiet_args = search_args(&[]);
    let quiet = muffin(&quiet_args.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(
        quiet.status.success(),
        "search failed: {}",
        String::from_utf8_lossy(&quiet.stderr)
    );
    assert!(
        quiet.stderr.is_empty(),
        "quiet search leaked to stderr: {}",
        String::from_utf8_lossy(&quiet.stderr)
    );

    // Verbose run: progress lines appear on stderr, result stays on stdout.
    let verbose_args = search_args(&["--verbose", "--trace-out", &trace]);
    let verbose = muffin(&verbose_args.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(
        verbose.status.success(),
        "{}",
        String::from_utf8_lossy(&verbose.stderr)
    );
    let stderr = String::from_utf8_lossy(&verbose.stderr);
    assert!(
        stderr.contains("proxy:"),
        "missing proxy progress line: {stderr}"
    );
    assert!(
        stderr.contains("episode"),
        "missing episode progress lines: {stderr}"
    );
    assert!(String::from_utf8_lossy(&verbose.stdout).contains("best"));

    // The trace log parses and summarize renders a per-phase table.
    let log = TraceLog::load_json(&trace).expect("trace log parses");
    assert!(!log.events.is_empty());
    let summary = muffin(&["trace", "summarize", "--trace", &trace]);
    assert!(summary.status.success());
    let text = String::from_utf8_lossy(&summary.stdout);
    assert!(text.contains("phase"), "missing table header: {text}");
    assert!(text.contains("search.episode"), "missing phase row: {text}");
    assert!(
        text.contains("search.cache_miss"),
        "missing counter row: {text}"
    );

    for f in [data, pool, outcome, trace] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn bad_arguments_exit_with_usage_code() {
    let out = muffin(&["search", "--workers"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "dangling option is a usage error"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("--workers"));

    let out = muffin(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
}
