//! End-to-end process tests for the `muffin` binary: quiet runs must be
//! silent on stderr, `--verbose` must report progress there, and
//! `--trace-out` must produce a parseable event log that
//! `trace summarize` renders.

use muffin_trace::TraceLog;
use std::path::PathBuf;
use std::process::{Command, Output};

fn muffin(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_muffin"))
        .args(args)
        .output()
        .expect("spawn muffin binary")
}

fn tmp(name: &str) -> String {
    let dir: PathBuf = std::env::temp_dir().join("muffin_cli_process_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn quiet_search_is_silent_on_stderr_and_verbose_is_not() {
    let data = tmp("data.json");
    let pool = tmp("pool.json");
    let outcome = tmp("outcome.json");
    let trace = tmp("trace.json");

    let gen = muffin(&[
        "generate",
        "--samples",
        "300",
        "--seed",
        "3",
        "--out",
        &data,
    ]);
    assert!(
        gen.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&gen.stderr)
    );
    assert!(gen.stderr.is_empty(), "generate must not write to stderr");

    let train = muffin(&[
        "train-pool",
        "--data",
        &data,
        "--archs",
        "ResNet-18,DenseNet121",
        "--epochs",
        "2",
        "--out",
        &pool,
    ]);
    assert!(
        train.status.success(),
        "train-pool failed: {}",
        String::from_utf8_lossy(&train.stderr)
    );
    assert!(
        train.stderr.is_empty(),
        "train-pool must not write to stderr"
    );

    let search_args = |extra: &[&str]| {
        let mut v = vec![
            "search",
            "--data",
            &data,
            "--pool",
            &pool,
            "--attrs",
            "age,site",
            "--episodes",
            "2",
            "--out",
            &outcome,
        ];
        v.extend_from_slice(extra);
        v.iter().map(|s| s.to_string()).collect::<Vec<_>>()
    };

    // Quiet run: stderr stays empty.
    let quiet_args = search_args(&[]);
    let quiet = muffin(&quiet_args.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(
        quiet.status.success(),
        "search failed: {}",
        String::from_utf8_lossy(&quiet.stderr)
    );
    assert!(
        quiet.stderr.is_empty(),
        "quiet search leaked to stderr: {}",
        String::from_utf8_lossy(&quiet.stderr)
    );

    // Verbose run: progress lines appear on stderr, result stays on stdout.
    let verbose_args = search_args(&["--verbose", "--trace-out", &trace]);
    let verbose = muffin(&verbose_args.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(
        verbose.status.success(),
        "{}",
        String::from_utf8_lossy(&verbose.stderr)
    );
    let stderr = String::from_utf8_lossy(&verbose.stderr);
    assert!(
        stderr.contains("proxy:"),
        "missing proxy progress line: {stderr}"
    );
    assert!(
        stderr.contains("episode"),
        "missing episode progress lines: {stderr}"
    );
    assert!(String::from_utf8_lossy(&verbose.stdout).contains("best"));

    // The trace log parses and summarize renders a per-phase table.
    let log = TraceLog::load_json(&trace).expect("trace log parses");
    assert!(!log.events.is_empty());
    let summary = muffin(&["trace", "summarize", "--trace", &trace]);
    assert!(summary.status.success());
    let text = String::from_utf8_lossy(&summary.stdout);
    assert!(text.contains("phase"), "missing table header: {text}");
    assert!(text.contains("search.episode"), "missing phase row: {text}");
    assert!(
        text.contains("search.cache_miss"),
        "missing counter row: {text}"
    );

    for f in [data, pool, outcome, trace] {
        std::fs::remove_file(f).ok();
    }
}

/// Generates the shared dataset + model pool used by the checkpoint/resume
/// process tests exactly once per test binary run.
fn fixture() -> (String, String) {
    use std::sync::OnceLock;
    static FIXTURE: OnceLock<(String, String)> = OnceLock::new();
    FIXTURE
        .get_or_init(|| {
            let data = tmp("ckpt_data.json");
            let pool = tmp("ckpt_pool.json");
            let gen = muffin(&[
                "generate",
                "--samples",
                "300",
                "--seed",
                "5",
                "--out",
                &data,
            ]);
            assert!(
                gen.status.success(),
                "generate failed: {}",
                String::from_utf8_lossy(&gen.stderr)
            );
            let train = muffin(&[
                "train-pool",
                "--data",
                &data,
                "--archs",
                "ResNet-18,DenseNet121",
                "--epochs",
                "2",
                "--out",
                &pool,
            ]);
            assert!(
                train.status.success(),
                "train-pool failed: {}",
                String::from_utf8_lossy(&train.stderr)
            );
            (data, pool)
        })
        .clone()
}

/// `search` arguments for the shared fixture: 6 episodes, REINFORCE batch
/// of 2, seed 11 — plus whatever `extra` flags the test needs.
fn search_cmd(data: &str, pool: &str, out: &str, extra: &[&str]) -> Vec<String> {
    let mut v: Vec<String> = [
        "search",
        "--data",
        data,
        "--pool",
        pool,
        "--attrs",
        "age,site",
        "--episodes",
        "6",
        "--batch",
        "2",
        "--seed",
        "11",
        "--out",
        out,
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    v.extend(extra.iter().map(|s| s.to_string()));
    v
}

fn run_search(args: &[String]) -> Output {
    muffin(&args.iter().map(String::as_str).collect::<Vec<_>>())
}

#[test]
fn stop_after_then_resume_reproduces_a_clean_run_byte_for_byte() {
    let (data, pool) = fixture();
    let clean_out = tmp("stop_clean.json");
    let halted_out = tmp("stop_halted.json");
    let resumed_out = tmp("stop_resumed.json");
    let ckpt = tmp("stop_ckpt.json");
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(&halted_out).ok();

    let clean = run_search(&search_cmd(&data, &pool, &clean_out, &["--workers", "1"]));
    assert!(
        clean.status.success(),
        "clean search failed: {}",
        String::from_utf8_lossy(&clean.stderr)
    );

    // Halt at the first batch boundary at or past episode 2.
    let halted = run_search(&search_cmd(
        &data,
        &pool,
        &halted_out,
        &["--workers", "2", "--checkpoint", &ckpt, "--stop-after", "2"],
    ));
    assert!(
        halted.status.success(),
        "halted search failed: {}",
        String::from_utf8_lossy(&halted.stderr)
    );
    let stdout = String::from_utf8_lossy(&halted.stdout);
    assert!(stdout.contains("halted"), "missing halt notice: {stdout}");
    assert!(stdout.contains("--resume"), "missing resume hint: {stdout}");
    assert!(
        !std::path::Path::new(&halted_out).exists(),
        "a halted run must not write its outcome file"
    );

    // Resume on a different worker count: bytes must still match.
    let resumed = run_search(&search_cmd(
        &data,
        &pool,
        &resumed_out,
        &["--workers", "4", "--checkpoint", &ckpt, "--resume"],
    ));
    assert!(
        resumed.status.success(),
        "resumed search failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        std::fs::read_to_string(&clean_out).expect("clean outcome"),
        std::fs::read_to_string(&resumed_out).expect("resumed outcome"),
        "halt + resume diverged from the uninterrupted run"
    );

    for f in [clean_out, resumed_out, ckpt] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn killing_a_checkpointed_search_mid_run_still_resumes_to_identical_bytes() {
    let (data, pool) = fixture();
    let clean_out = tmp("kill_clean.json");
    let killed_out = tmp("kill_killed.json");
    let resumed_out = tmp("kill_resumed.json");
    let ckpt = tmp("kill_ckpt.json");
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(&killed_out).ok();

    let clean = run_search(&search_cmd(&data, &pool, &clean_out, &["--workers", "1"]));
    assert!(
        clean.status.success(),
        "clean search failed: {}",
        String::from_utf8_lossy(&clean.stderr)
    );

    // Checkpoint every batch, then kill the process as soon as the first
    // checkpoint lands on disk. Checkpoint writes are atomic (temp +
    // rename), so whatever instant the kill hits, the file is complete.
    let args = search_cmd(
        &data,
        &pool,
        &killed_out,
        &[
            "--workers",
            "2",
            "--checkpoint",
            &ckpt,
            "--checkpoint-every",
            "1",
        ],
    );
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_muffin"))
        .args(&args)
        .spawn()
        .expect("spawn muffin binary");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    loop {
        if std::fs::metadata(&ckpt)
            .map(|m| m.len() > 0)
            .unwrap_or(false)
        {
            child.kill().ok();
            break;
        }
        // If the run already finished, resuming is a no-op and the bytes
        // still have to match — the race is benign either way.
        if child.try_wait().expect("poll child").is_some() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no checkpoint appeared within 120s"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    child.wait().expect("reap child");

    let resumed = run_search(&search_cmd(
        &data,
        &pool,
        &resumed_out,
        &["--workers", "1", "--checkpoint", &ckpt, "--resume"],
    ));
    assert!(
        resumed.status.success(),
        "resumed search failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        std::fs::read_to_string(&clean_out).expect("clean outcome"),
        std::fs::read_to_string(&resumed_out).expect("resumed outcome"),
        "kill + resume diverged from the uninterrupted run"
    );

    for f in [clean_out, killed_out, resumed_out, ckpt] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn corrupt_or_mismatched_checkpoints_are_rejected_loudly() {
    let (data, pool) = fixture();
    let halted_out = tmp("reject_halted.json");
    let resumed_out = tmp("reject_resumed.json");
    let ckpt = tmp("reject_ckpt.json");
    std::fs::remove_file(&ckpt).ok();

    let halted = run_search(&search_cmd(
        &data,
        &pool,
        &halted_out,
        &["--checkpoint", &ckpt, "--stop-after", "2"],
    ));
    assert!(
        halted.status.success(),
        "halted search failed: {}",
        String::from_utf8_lossy(&halted.stderr)
    );
    let valid = std::fs::read_to_string(&ckpt).expect("checkpoint written");

    // A different seed no longer matches the checkpoint's fingerprint.
    let mut mismatch_args = search_cmd(
        &data,
        &pool,
        &resumed_out,
        &["--checkpoint", &ckpt, "--resume"],
    );
    let seed_at = mismatch_args.iter().position(|a| a == "11").expect("seed");
    mismatch_args[seed_at] = "12".to_string();
    let mismatch = run_search(&mismatch_args);
    assert!(!mismatch.status.success(), "seed mismatch must fail");
    let stderr = String::from_utf8_lossy(&mismatch.stderr);
    assert!(
        stderr.contains("stale artifact") && stderr.contains("rng seed/state"),
        "unhelpful mismatch error: {stderr}"
    );

    // A truncated checkpoint is rejected as corrupt, not silently ignored.
    std::fs::write(&ckpt, &valid[..valid.len() / 2]).expect("truncate checkpoint");
    let corrupt = run_search(&search_cmd(
        &data,
        &pool,
        &resumed_out,
        &["--checkpoint", &ckpt, "--resume"],
    ));
    assert!(!corrupt.status.success(), "corrupt checkpoint must fail");
    let stderr = String::from_utf8_lossy(&corrupt.stderr);
    assert!(
        stderr.contains("stale artifact"),
        "unhelpful corruption error: {stderr}"
    );

    for f in [halted_out, resumed_out, ckpt] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn warm_eval_cache_reports_disk_hits_and_preserves_outcome_bytes() {
    let (data, pool) = fixture();
    let cold_out = tmp("cache_cold.json");
    let warm_out = tmp("cache_warm.json");
    let cache = tmp("cache_file.json");
    let trace = tmp("cache_trace.json");
    std::fs::remove_file(&cache).ok();

    let cold = run_search(&search_cmd(
        &data,
        &pool,
        &cold_out,
        &["--eval-cache", &cache],
    ));
    assert!(
        cold.status.success(),
        "cold search failed: {}",
        String::from_utf8_lossy(&cold.stderr)
    );

    let warm = run_search(&search_cmd(
        &data,
        &pool,
        &warm_out,
        &["--eval-cache", &cache, "--trace-out", &trace],
    ));
    assert!(
        warm.status.success(),
        "warm search failed: {}",
        String::from_utf8_lossy(&warm.stderr)
    );
    assert_eq!(
        std::fs::read_to_string(&cold_out).expect("cold outcome"),
        std::fs::read_to_string(&warm_out).expect("warm outcome"),
        "a warm eval cache changed the outcome"
    );

    let log = TraceLog::load_json(&trace).expect("trace log parses");
    let disk_hits: u64 = log
        .events
        .iter()
        .filter(|e| e.name == "search.cache_hit_disk")
        .map(|e| match e.data {
            muffin_trace::EventData::Counter { value } => value,
            _ => 0,
        })
        .sum();
    assert!(
        disk_hits >= 1,
        "warm run reported no search.cache_hit_disk counter"
    );

    for f in [cold_out, warm_out, cache, trace] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn pool_lifecycle_extends_warm_resumes_and_guards_chosen_models() {
    let (data, fixture_pool) = fixture();
    let pool = tmp("lifecycle_pool.json");
    let out = tmp("lifecycle_out.json");
    let ckpt = tmp("lifecycle_ckpt.json");
    let cache = tmp("lifecycle_cache.json");
    let trace = tmp("lifecycle_trace.json");
    std::fs::copy(&fixture_pool, &pool).expect("copy fixture pool");
    for f in [&out, &ckpt, &cache, &trace] {
        std::fs::remove_file(f).ok();
    }

    // Phase 1: search on the 2-model pool, halting at episode 4 with a
    // checkpoint and a cross-run eval cache on disk.
    let halted = run_search(&search_cmd(
        &data,
        &pool,
        &out,
        &["--checkpoint", &ckpt, "--eval-cache", &cache, "--stop-after", "4"],
    ));
    assert!(
        halted.status.success(),
        "halted search failed: {}",
        String::from_utf8_lossy(&halted.stderr)
    );

    // Phase 2: grow the pool with two freshly trained models. Existing
    // models must keep their indices (prefix growth).
    let add = muffin(&[
        "pool", "add", "--pool", &pool, "--data", &data,
        "--archs", "ShuffleNet_V2_X0_5,MobileNet_V3_Small",
        "--epochs", "2", "--seed", "29",
    ]);
    assert!(
        add.status.success(),
        "pool add failed: {}",
        String::from_utf8_lossy(&add.stderr)
    );
    let add_stdout = String::from_utf8_lossy(&add.stdout);
    assert!(
        add_stdout.contains("appended 2 model(s)"),
        "missing append notice: {add_stdout}"
    );

    // Re-adding an existing model is rejected by name, not silently
    // duplicated.
    let dup = muffin(&[
        "pool", "add", "--pool", &pool, "--data", &data, "--archs", "ResNet-18",
    ]);
    assert!(!dup.status.success(), "duplicate pool add must fail");
    assert!(
        String::from_utf8_lossy(&dup.stderr).contains("already in the pool"),
        "unhelpful duplicate error: {}",
        String::from_utf8_lossy(&dup.stderr)
    );

    // Phase 3: resume against the grown pool. The checkpoint's fingerprint
    // records the old manifest, so this exercises the warm-start path; the
    // eval cache must serve the pre-extension evaluations from disk.
    let resumed = run_search(&search_cmd(
        &data,
        &pool,
        &out,
        &[
            "--checkpoint", &ckpt, "--eval-cache", &cache, "--resume",
            "--trace-out", &trace, "--verbose",
        ],
    ));
    assert!(
        resumed.status.success(),
        "resume over grown pool failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("pool grew"),
        "missing warm-start progress line: {stderr}"
    );

    // Pre-extension evaluations were served from the disk cache.
    let log = TraceLog::load_json(&trace).expect("trace log parses");
    let disk_hits: u64 = log
        .events
        .iter()
        .filter(|e| e.name == "search.cache_hit_disk")
        .map(|e| match e.data {
            muffin_trace::EventData::Counter { value } => value,
            _ => 0,
        })
        .sum();
    assert!(
        disk_hits >= 1,
        "resumed run reported no search.cache_hit_disk counter"
    );

    // The warm-started search keeps its full history, so the final best
    // reward can only match or beat the best seen before the extension.
    let outcome = muffin::SearchOutcome::load_json(&out).expect("resumed outcome parses");
    let pre_extension_best = outcome
        .history
        .iter()
        .filter(|r| r.episode < 4)
        .map(|r| r.reward)
        .fold(f32::NEG_INFINITY, f32::max);
    assert!(
        pre_extension_best.is_finite(),
        "resumed outcome lost its pre-extension history"
    );
    assert!(
        outcome.best().reward >= pre_extension_best,
        "extension lost reward: best {} < pre-extension best {pre_extension_best}",
        outcome.best().reward
    );

    // Phase 4: `pool list` names every model with its content id.
    let list = muffin(&["pool", "list", "--pool", &pool]);
    assert!(list.status.success());
    let list_stdout = String::from_utf8_lossy(&list.stdout);
    assert!(
        list_stdout.contains("4 model(s)") && list_stdout.contains("ShuffleNet_V2_X0_5"),
        "pool list missing models: {list_stdout}"
    );

    // Phase 5: removing a model the best candidate unites is rejected
    // loudly, naming the model by identity.
    let chosen = outcome.best().model_names[0].clone();
    let reject = muffin(&[
        "pool", "remove", "--pool", &pool, "--model", &chosen, "--outcome", &out,
    ]);
    assert!(!reject.status.success(), "removing a chosen model must fail");
    let reject_err = String::from_utf8_lossy(&reject.stderr);
    assert!(
        reject_err.contains("refusing to remove") && reject_err.contains("(id "),
        "rejection must name the model id: {reject_err}"
    );

    // Removing a never-chosen model succeeds and never touches the outcome
    // file: the recorded snapshot stays byte-identical.
    let outcome_bytes = std::fs::read(&out).expect("outcome bytes");
    let pool_models = muffin_models::ModelPool::load_json(&pool).expect("pool parses");
    let unchosen = pool_models
        .iter()
        .map(|m| m.name().to_string())
        .find(|name| !outcome.best().model_names.contains(name))
        .expect("a 4-model pool has an unchosen model");
    let remove = muffin(&[
        "pool", "remove", "--pool", &pool, "--model", &unchosen, "--outcome", &out,
    ]);
    assert!(
        remove.status.success(),
        "removing an unchosen model failed: {}",
        String::from_utf8_lossy(&remove.stderr)
    );
    assert_eq!(
        outcome_bytes,
        std::fs::read(&out).expect("outcome bytes after remove"),
        "pool remove must not rewrite the outcome file"
    );

    // Phase 6: `pool gc --dry-run` reports garbage without writing; the
    // real gc keeps exactly the united models.
    let before_gc = std::fs::read(&pool).expect("pool bytes");
    let dry = muffin(&["pool", "gc", "--pool", &pool, "--outcome", &out, "--dry-run"]);
    assert!(dry.status.success());
    assert_eq!(
        before_gc,
        std::fs::read(&pool).expect("pool bytes after dry run"),
        "gc --dry-run must not rewrite the pool"
    );
    let gc = muffin(&["pool", "gc", "--pool", &pool, "--outcome", &out]);
    assert!(
        gc.status.success(),
        "pool gc failed: {}",
        String::from_utf8_lossy(&gc.stderr)
    );
    let kept = muffin_models::ModelPool::load_json(&pool).expect("gc'd pool parses");
    let mut kept_names: Vec<&str> = kept.iter().map(|m| m.name()).collect();
    let mut united: Vec<&str> = outcome.best().model_names.iter().map(String::as_str).collect();
    kept_names.sort_unstable();
    united.sort_unstable();
    united.dedup();
    assert_eq!(kept_names, united, "gc kept the wrong models");

    for f in [pool, out, ckpt, cache, trace] {
        std::fs::remove_file(f).ok();
    }
}

/// `search` arguments for a sharded fleet on the shared fixture recipe:
/// 2 islands on 2 shard slots, exchanging elites every 2 episodes, fleet
/// state in `dir`.
fn sharded_cmd(data: &str, pool: &str, out: &str, dir: &str) -> Vec<String> {
    search_cmd(
        data,
        pool,
        out,
        &[
            "--shards",
            "2",
            "--islands",
            "2",
            "--exchange-every",
            "2",
            "--workers",
            "1",
            "--shard-dir",
            dir,
        ],
    )
}

fn fresh_fleet_dir(name: &str) -> String {
    let dir = tmp(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn killing_a_sharded_fleet_mid_run_still_resumes_to_identical_bytes() {
    let (data, pool) = fixture();
    let clean_out = tmp("fleet_kill_clean.json");
    let resumed_out = tmp("fleet_kill_resumed.json");
    let clean_dir = fresh_fleet_dir("fleet_kill_clean_dir");
    let killed_dir = fresh_fleet_dir("fleet_kill_killed_dir");

    let clean = run_search(&sharded_cmd(&data, &pool, &clean_out, &clean_dir));
    assert!(
        clean.status.success(),
        "clean fleet failed: {}",
        String::from_utf8_lossy(&clean.stderr)
    );

    // Kill the supervisor (taking every island down with it) as soon as
    // shard 0's checkpoint lands on disk — i.e. mid-fleet, around the
    // first elite-exchange barrier. All fleet writes are atomic (temp +
    // rename), so whatever instant the kill hits, on-disk state is
    // complete and the fleet must resume to the uninterrupted bytes.
    let args = sharded_cmd(&data, &pool, &resumed_out, &killed_dir);
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_muffin"))
        .args(&args)
        .spawn()
        .expect("spawn muffin binary");
    let shard0 = std::path::Path::new(&killed_dir).join("shard-0.ckpt.json");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    loop {
        if std::fs::metadata(&shard0)
            .map(|m| m.len() > 0)
            .unwrap_or(false)
        {
            child.kill().ok();
            break;
        }
        // If the fleet already finished, resuming is a no-op and the
        // bytes still have to match — the race is benign either way.
        if child.try_wait().expect("poll child").is_some() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no shard checkpoint appeared within 120s"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    child.wait().expect("reap child");
    std::fs::remove_file(&resumed_out).ok();

    let mut resume_args = sharded_cmd(&data, &pool, &resumed_out, &killed_dir);
    resume_args.push("--resume".to_string());
    let resumed = run_search(&resume_args);
    assert!(
        resumed.status.success(),
        "resumed fleet failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        std::fs::read_to_string(&clean_out).expect("clean outcome"),
        std::fs::read_to_string(&resumed_out).expect("resumed outcome"),
        "kill + resume diverged from the uninterrupted fleet"
    );

    for f in [clean_out, resumed_out] {
        std::fs::remove_file(f).ok();
    }
    for d in [clean_dir, killed_dir] {
        std::fs::remove_dir_all(d).ok();
    }
}

#[test]
fn corrupt_shard_checkpoints_are_rejected_naming_the_shard() {
    let (data, pool) = fixture();
    let out = tmp("fleet_corrupt_out.json");
    let resumed_out = tmp("fleet_corrupt_resumed.json");
    let dir = fresh_fleet_dir("fleet_corrupt_dir");

    let clean = run_search(&sharded_cmd(&data, &pool, &out, &dir));
    assert!(
        clean.status.success(),
        "fleet failed: {}",
        String::from_utf8_lossy(&clean.stderr)
    );

    // Corrupt shard 1's checkpoint, then try to resume: the fleet must
    // refuse loudly, naming the offending shard rather than silently
    // recomputing or blaming the wrong file.
    let shard1 = std::path::Path::new(&dir).join("shard-1.ckpt.json");
    std::fs::write(&shard1, "{ definitely not a checkpoint").expect("corrupt shard checkpoint");
    let mut resume_args = sharded_cmd(&data, &pool, &resumed_out, &dir);
    resume_args.push("--resume".to_string());
    let resumed = run_search(&resume_args);
    assert!(
        !resumed.status.success(),
        "a corrupt shard checkpoint must fail the fleet"
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("shard 1"),
        "error must name the offending shard: {stderr}"
    );

    for f in [out, resumed_out] {
        std::fs::remove_file(f).ok();
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn serve_answers_stdin_requests_and_shuts_down_cleanly_on_eof() {
    use std::io::Write as _;
    // The demo deployment is IsicLike-small: 24 features per request.
    let good_row = vec!["0.5"; 24].join(",");
    let input = format!("{good_row}\n1.0,2.0\nnot,numbers,at,all\n\n{good_row}\n");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_muffin"))
        .args(["serve", "--seed", "9", "--workers", "2"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn muffin serve");
    child
        .stdin
        .take()
        .expect("stdin handle")
        .write_all(input.as_bytes())
        .expect("write requests");
    // Dropping stdin sends EOF: the server must exit on its own.
    let out = child.wait_with_output().expect("reap muffin serve");
    assert!(
        out.status.success(),
        "serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ready"), "missing ready line: {stdout}");
    let ok_lines = stdout.lines().filter(|l| l.starts_with("ok ")).count();
    assert_eq!(ok_lines, 2, "expected 2 served requests: {stdout}");
    // The short row is answered with an error reply, not a crash...
    assert!(
        stdout.contains("error: invalid request: expected 24 features, got 2"),
        "missing width-error reply: {stdout}"
    );
    // ...and so is the unparsable row.
    assert!(
        stdout.contains("error: invalid request: not a number"),
        "missing parse-error reply: {stdout}"
    );
    assert!(
        stdout.contains("served 2 ok, 0 shed, 1 errors"),
        "missing shutdown stats: {stdout}"
    );
}

/// Runs `muffin loadgen`, asserting success, and returns its stdout.
fn run_loadgen(extra: &[&str]) -> String {
    let mut args = vec!["loadgen"];
    args.extend_from_slice(extra);
    let out = muffin(&args);
    assert!(
        out.status.success(),
        "loadgen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn loadgen_archives_a_bench_shaped_throughput_and_latency_report() {
    let report_path = tmp("loadgen_report.json");
    let stdout = run_loadgen(&[
        "--seed",
        "13",
        "--clients",
        "3",
        "--requests",
        "40",
        "--out",
        &report_path,
    ]);
    assert!(stdout.contains("120 requests"), "{stdout}");
    assert!(stdout.contains("p50"), "{stdout}");
    let report: muffin_json::Json =
        muffin_json::from_str(&std::fs::read_to_string(&report_path).expect("report written"))
            .expect("report parses");
    assert_eq!(
        report.get("suite"),
        Some(&muffin_json::Json::Str("serve".into()))
    );
    let results = match report.get("results") {
        Some(muffin_json::Json::Arr(items)) => items.clone(),
        other => panic!("missing results array: {other:?}"),
    };
    let names: Vec<_> = results
        .iter()
        .filter_map(|r| r.get("name").cloned())
        .collect();
    for expected in ["request_p50", "request_p99", "req_interval"] {
        assert!(
            names.contains(&muffin_json::Json::Str(expected.into())),
            "missing {expected} in {names:?}"
        );
    }
    // Non-saturating run: every request completed.
    let loadgen = report.get("loadgen").expect("loadgen counters");
    assert_eq!(loadgen.get("completed"), Some(&muffin_json::Json::Int(120)));
    assert_eq!(loadgen.get("shed"), Some(&muffin_json::Json::Int(0)));
    std::fs::remove_file(report_path).ok();
}

#[test]
fn saturated_loadgen_sheds_and_still_exits_zero() {
    let report_path = tmp("loadgen_shed_report.json");
    run_loadgen(&[
        "--seed",
        "13",
        "--clients",
        "6",
        "--requests",
        "5",
        "--queue-depth",
        "1",
        "--batch",
        "1",
        "--workers",
        "1",
        "--worker-delay-us",
        "30000",
        "--out",
        &report_path,
    ]);
    let report: muffin_json::Json =
        muffin_json::from_str(&std::fs::read_to_string(&report_path).expect("report written"))
            .expect("report parses");
    let loadgen = report.get("loadgen").expect("loadgen counters");
    let shed = match loadgen.get("shed") {
        Some(&muffin_json::Json::Int(n)) => n,
        other => panic!("missing shed counter: {other:?}"),
    };
    let completed = match loadgen.get("completed") {
        Some(&muffin_json::Json::Int(n)) => n,
        other => panic!("missing completed counter: {other:?}"),
    };
    assert!(shed > 0, "saturation produced no sheds");
    assert_eq!(completed + shed, 30, "a request vanished");
    std::fs::remove_file(report_path).ok();
}

#[test]
fn stripped_loadgen_traces_are_byte_identical_across_runs_and_worker_counts() {
    let stripped = |name: &str, workers: &str| {
        let trace_path = tmp(name);
        // Non-saturating closed loop (queue depth >= clients): zero sheds,
        // so the histogram count equals the request count deterministically.
        run_loadgen(&[
            "--seed",
            "21",
            "--clients",
            "4",
            "--requests",
            "25",
            "--queue-depth",
            "64",
            "--workers",
            workers,
            "--trace-out",
            &trace_path,
        ]);
        let log = TraceLog::load_json(&trace_path).expect("trace parses");
        std::fs::remove_file(&trace_path).ok();
        muffin_json::to_string(&log.stripped())
    };
    let first = stripped("lg_trace_a.json", "1");
    let second = stripped("lg_trace_b.json", "1");
    let more_workers = stripped("lg_trace_c.json", "4");
    assert_eq!(first, second, "same config diverged across runs");
    assert_eq!(first, more_workers, "worker count leaked into the trace");
    // The histogram made it into the log with the full request count.
    let log: TraceLog = muffin_json::from_str(&first).expect("stripped log parses");
    let histogram = log
        .events
        .iter()
        .find(|e| e.name == "serve.request")
        .expect("serve.request histogram event");
    match histogram.data {
        muffin_trace::EventData::Histogram { count } => assert_eq!(count, 100),
        ref other => panic!("serve.request is not a histogram: {other:?}"),
    }
}

#[test]
fn serve_and_loadgen_reject_bad_flags_before_training_anything() {
    for args in [
        ["loadgen", "--workers", "0"],
        ["loadgen", "--queue-depth", "0"],
        ["loadgen", "--batch", "0"],
        ["loadgen", "--clients", "0"],
        ["serve", "--workers", "0"],
        ["serve", "--queue-depth", "0"],
    ] {
        let out = muffin(&args);
        assert_eq!(out.status.code(), Some(1), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(args[1]), "{args:?}: {stderr}");
    }
}

#[test]
fn bad_arguments_exit_with_usage_code() {
    let out = muffin(&["search", "--workers"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "dangling option is a usage error"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("--workers"));

    let out = muffin(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
}

/// A small user-written scenario file exercising the full schema: two
/// attributes, shares/angles/noise, and an intersectional cell effect.
const CUSTOM_SCENARIO: &str = r#"{
  "version": 1,
  "name": "custom-credit",
  "family": "tabular",
  "description": "process-test scenario with an old-female cell effect",
  "default_attrs": ["gender", "age"],
  "generator": {
    "num_samples": 300,
    "feature_dim": 8,
    "num_classes": 2,
    "class_sep": 2.0,
    "base_noise": 1.0,
    "attributes": [
      {
        "name": "gender",
        "groups": [
          {"name": "male", "share": 0.65},
          {"name": "female", "share": 0.35, "angle_deg": 40.0, "noise_mult": 1.4}
        ],
        "planes": [[0, 1]]
      },
      {
        "name": "age",
        "groups": [
          {"name": "young", "share": 0.7},
          {"name": "old", "share": 0.3, "angle_deg": 55.0, "noise_mult": 1.6}
        ],
        "planes": [[1, 2]]
      }
    ],
    "correlation": 0.4,
    "interactions": [
      {
        "attr_a": "gender",
        "attr_b": "age",
        "planes": [[0, 2]],
        "cells": [
          {"group_a": "female", "group_b": "old", "angle_deg": 60.0, "noise_mult": 1.8}
        ]
      }
    ]
  }
}"#;

/// `matrix` arguments for a 2×2 grid over one builtin and one user
/// scenario file, sized for a debug-build process test.
fn matrix_cmd(scenario_file: &str, out_dir: &str, extra: &[&str]) -> Vec<String> {
    let scenarios = format!("german-credit,{scenario_file}");
    let mut v: Vec<String> = [
        "matrix",
        "--scenarios",
        &scenarios,
        "--rewards",
        "paper,intersect",
        "--samples",
        "300",
        "--episodes",
        "2",
        "--epochs",
        "2",
        "--archs",
        "ResNet-18,DenseNet121",
        "--seed",
        "11",
        "--out-dir",
        out_dir,
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    v.extend(extra.iter().map(|s| s.to_string()));
    v
}

#[test]
fn matrix_reports_are_byte_identical_across_worker_counts_and_cache_reuse() {
    let scenario_file = tmp("matrix_custom_scenario.json");
    std::fs::write(&scenario_file, CUSTOM_SCENARIO).expect("write scenario file");
    let dir_serial = tmp("matrix_serial");
    let dir_parallel = tmp("matrix_parallel");
    let dir_warm = tmp("matrix_warm");
    let cache_dir = tmp("matrix_cache");
    std::fs::remove_dir_all(&cache_dir).ok();

    let serial = muffin(
        &matrix_cmd(&scenario_file, &dir_serial, &["--workers", "1"])
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
    );
    assert!(
        serial.status.success(),
        "serial matrix failed: {}",
        String::from_utf8_lossy(&serial.stderr)
    );
    assert!(
        serial.stderr.is_empty(),
        "quiet matrix leaked to stderr: {}",
        String::from_utf8_lossy(&serial.stderr)
    );
    let stdout = String::from_utf8_lossy(&serial.stdout);
    assert!(stdout.contains("2×2 grid"), "missing grid summary: {stdout}");
    assert!(
        stdout.contains("custom-credit"),
        "missing file-scenario row: {stdout}"
    );

    let parallel = muffin(
        &matrix_cmd(&scenario_file, &dir_parallel, &["--workers", "4"])
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
    );
    assert!(
        parallel.status.success(),
        "parallel matrix failed: {}",
        String::from_utf8_lossy(&parallel.stderr)
    );

    // A warm run over a freshly written per-cell eval cache (the first
    // --cache-dir run populates it, this one reads it back).
    let cold = muffin(
        &matrix_cmd(
            &scenario_file,
            &dir_warm,
            &["--workers", "2", "--cache-dir", &cache_dir],
        )
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>(),
    );
    assert!(cold.status.success());
    let warm = muffin(
        &matrix_cmd(
            &scenario_file,
            &dir_warm,
            &["--workers", "2", "--cache-dir", &cache_dir],
        )
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>(),
    );
    assert!(warm.status.success());
    // One cache file per cell appeared.
    let caches = std::fs::read_dir(&cache_dir).expect("cache dir").count();
    assert_eq!(caches, 4, "expected one eval cache per cell");

    for name in ["matrix.json", "matrix.md"] {
        let a = std::fs::read_to_string(std::path::Path::new(&dir_serial).join(name))
            .expect("serial report");
        let b = std::fs::read_to_string(std::path::Path::new(&dir_parallel).join(name))
            .expect("parallel report");
        let c = std::fs::read_to_string(std::path::Path::new(&dir_warm).join(name))
            .expect("warm report");
        assert_eq!(a, b, "{name} diverged across worker counts");
        assert_eq!(a, c, "{name} diverged under a warm eval cache");
    }

    // The JSON report parses and covers every cell of the grid.
    let json: muffin_json::Json = muffin_json::from_str(
        &std::fs::read_to_string(std::path::Path::new(&dir_serial).join("matrix.json"))
            .expect("json report"),
    )
    .expect("report parses");
    match json.get("cells") {
        Some(muffin_json::Json::Arr(cells)) => assert_eq!(cells.len(), 4),
        other => panic!("missing cells array: {other:?}"),
    }

    std::fs::remove_file(scenario_file).ok();
    for d in [dir_serial, dir_parallel, dir_warm, cache_dir] {
        std::fs::remove_dir_all(d).ok();
    }
}

#[test]
fn matrix_rejects_bad_grids_before_any_work() {
    let out_dir = tmp("matrix_never_created");
    std::fs::remove_dir_all(&out_dir).ok();

    let bad_scenario = muffin(&[
        "matrix",
        "--scenarios",
        "no-such-scenario",
        "--out-dir",
        &out_dir,
    ]);
    assert!(!bad_scenario.status.success());
    let stderr = String::from_utf8_lossy(&bad_scenario.stderr);
    assert!(stderr.contains("unknown scenario"), "{stderr}");
    assert!(
        stderr.contains("german-credit"),
        "error must list the builtins: {stderr}"
    );

    let bad_reward = muffin(&[
        "matrix",
        "--scenarios",
        "german-credit",
        "--rewards",
        "paper,bogus",
        "--out-dir",
        &out_dir,
    ]);
    assert!(!bad_reward.status.success());
    let stderr = String::from_utf8_lossy(&bad_reward.stderr);
    assert!(stderr.contains("unknown reward"), "{stderr}");

    let bad_lambda = muffin(&[
        "matrix",
        "--scenarios",
        "german-credit",
        "--rewards",
        "linear:nope",
        "--out-dir",
        &out_dir,
    ]);
    assert!(!bad_lambda.status.success());
    assert!(String::from_utf8_lossy(&bad_lambda.stderr).contains("lambda"));

    // A malformed scenario file is rejected with the parser's
    // line/column position, before anything is generated or trained.
    let broken = tmp("matrix_broken_scenario.json");
    std::fs::write(&broken, "{\n  \"version\": 1,\n  \"name\": \"x\" oops\n}")
        .expect("write broken scenario");
    let bad_file = muffin(&["matrix", "--scenarios", &broken, "--out-dir", &out_dir]);
    assert!(!bad_file.status.success());
    let stderr = String::from_utf8_lossy(&bad_file.stderr);
    assert!(stderr.contains("line 3"), "{stderr}");
    std::fs::remove_file(broken).ok();

    // Validation happens before the output directory is created.
    assert!(
        !std::path::Path::new(&out_dir).exists(),
        "a rejected grid must not create --out-dir"
    );
}
