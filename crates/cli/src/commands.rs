use crate::Args;
use muffin::{
    distill_student, run_sharded, summarize, DistillConfig, MuffinError, MuffinSearch,
    PersistenceOptions, SearchConfig, SearchOutcome, ShardedConfig, TextTable, TraceLog, Tracer,
    WorkerPool,
};
use muffin_data::{Dataset, FitzpatrickLike, IsicLike};
use muffin_models::{format_model_id, Architecture, BackboneConfig, ModelIdentity, ModelPool};
use muffin_serve::{run_loadgen, serve_scoped, LoadgenConfig, ServeConfig, ServeEngine};
use muffin_tensor::Rng64;
use std::time::Duration;

/// Usage text printed by `muffin help` and on argument errors.
pub const USAGE: &str = "\
muffin — multi-dimension AI fairness by uniting off-the-shelf models

USAGE:
  muffin <COMMAND> [--key value]...

COMMANDS:
  generate    Generate a synthetic dataset
              --dataset isic|fitzpatrick (default isic)
              --samples N (default 8000)  --seed S (default 7)
              --out FILE (required)
  train-pool  Train and freeze an off-the-shelf model pool
              --data FILE (required)      --out FILE (required)
              --archs A,B,... (default: the full zoo)
              --epochs N (default 60)     --seed S (default 7)
              --split-seed S (default 7)
  evaluate    Evaluate every pool model on the test split
              --data FILE  --pool FILE (required)
              --split-seed S (default 7)
  pool list   Show every pool model with its content id
              --pool FILE (required)
  pool add    Train new models and append them to an existing pool
              --pool FILE  --data FILE  --archs A,B,... (required)
              --epochs N (default 60)     --seed S (default 7)
              --split-seed S (default 7)
              Appending keeps every existing model at its index, so
              checkpoints and eval caches written against the old pool
              warm-resume via `search --resume` (see docs/OPERATIONS.md
              §12).
  pool remove Remove one model from a pool, by name or 16-hex content id
              --pool FILE  --model NAME|ID (required)
              --outcome FILE (optional: refuse to remove a model that the
                outcome's best fused candidate uses; the outcome file is
                never touched)
              Removal changes surviving models' indices: artifacts
              recorded against the old pool are rejected, naming the
              removed model by id.
  pool gc     Drop every model the outcome's best candidate does not use
              --pool FILE  --outcome FILE (required)
              --dry-run (print what would be removed, change nothing)
  search      Run the Muffin reinforcement-learning search
              --data FILE  --pool FILE (required)
              --attrs a,b (required)      --episodes N (default 150)
              --slots N (default 2)       --seed S (default 7)
              --split-seed S (default 7)  --out FILE (required)
              --batch M (default 1: Eq. 4 REINFORCE batch size; the
                controller updates once per M episodes)
              --workers N (default: available parallelism; candidate
                evaluations of each REINFORCE batch run on N threads —
                the outcome is identical for every N)
              --distill-out FILE (optional: distil the best candidate
                into a single student MLP and save it as JSON)
              --student-hidden w1,w2 (default 64,32)
              --trace-out FILE (optional: record a structured event log
                of the run — spans, counters, latency histograms — as
                deterministic JSON; timings live in an isolated field)
              --checkpoint FILE (optional: write a resumable snapshot of
                the run — RNG position, controller state, history and
                the evaluation cache — atomically at REINFORCE batch
                boundaries)
              --checkpoint-every N (default 10: minimum episodes between
                checkpoint writes; snapshots land on the next batch
                boundary, and the final state is always written)
              --resume (continue from --checkpoint instead of starting
                fresh; the resumed outcome is byte-identical to an
                uninterrupted run. The checkpoint must match the run's
                seed, config, pool and data, or it is rejected — except
                a pool that *grew* via `pool add`: the controller is
                warm-started over the larger pool and every recorded
                evaluation is reused)
              --eval-cache FILE (optional: cross-run evaluation cache —
                candidates already trained by an earlier run with the
                same seed/config/pool/data are reused, counted on the
                search.cache_hit_disk trace counter; the file is
                rewritten with the merged cache afterwards)
              --stop-after N (optional, needs --checkpoint: halt at the
                first batch boundary at or past episode N, writing a
                checkpoint — an operator drill for kill/resume)
              --shards N (optional: run a sharded multi-island fleet with
                N islands executing concurrently; the merged outcome is
                byte-identical for every N, worker count and completion
                order. Requires --shard-dir; incompatible with
                --checkpoint, --stop-after and --distill-out)
              --shard-dir DIR (fleet state: identity manifest, per-shard
                checkpoints, per-round cache snapshots and elite files;
                --resume continues a killed fleet from this directory)
              --islands K (default 4: search islands the episode budget
                is split across; identity-bearing, unlike --shards)
              --exchange-every E (default 10: per-island episodes between
                elite-exchange barriers, rounded up to REINFORCE batch
                boundaries; 0 disables exchange)
              --elites E (default 2: fleet-wide elites broadcast to every
                island's controller at each barrier)
              --screen-budget B (default 0 = off: per-island successive-
                halving screen; cheap low-epoch rungs promote into full
                evaluations that seed the fleet's shared eval cache)
              In sharded mode --workers sets each island's evaluation
              threads and --eval-cache names a cross-fleet warm cache
              (read before the screen, merged back after the run).
              --verbose (print progress lines to stderr; without it the
                run is silent apart from the result)
  matrix      Benchmark grid: one Muffin search per scenario × reward cell
              --scenarios a,b,... (required: registry names from
                `docs/SCENARIOS.md` — e.g. isic-intersect, adult-income —
                or paths to scenario JSON files)
              --rewards r,r,... (default paper,intersect; each of
                paper|linear[:lambda]|worst|intersect)
              --episodes N (default 12: search episodes per cell)
              --batch M (default 4)       --slots N (default 2)
              --samples N (default 1200 per scenario; 0 keeps each
                scenario's own default)
              --epochs N (default 6: backbone training epochs)
              --archs A,B,... (default ResNet-18,DenseNet121,MobileNet_V2)
              --seed S (default 7: folded with the scenario name and
                reward tag, so every cell is independently seeded)
              --workers N (default: available parallelism; cells run
                concurrently — the report bytes are identical for every N)
              --out-dir DIR (default results/matrix: writes matrix.json
                and a rendered matrix.md)
              --cache-dir DIR (optional: one persistent eval cache per
                cell, reused by later runs of the same grid)
              --bench-out FILE (optional: per-cell wall-clock timings as
                a bench-suite JSON for scripts/bench-compare.sh; timings
                never enter matrix.json/matrix.md)
              --verbose (phase progress on stderr)
  serve       Serve the demo fused model over stdin, one request per line
              --seed S (default 7: demo pool/head training seed)
              --queue-depth N (default 64)  --batch N (default 16)
              --workers N (default 2)
              Each input line is comma-separated feature values; each
              output line is `ok <class>` or `error: ...`. EOF shuts the
              server down cleanly and prints admission statistics.
  loadgen     Closed-loop load generator against the demo fused model
              --seed S (default 7)        --clients N (default 4)
              --requests N (default 200: issued per client)
              --queue-depth N (default 64) --batch N (default 16)
              --workers N (default 2)
              --worker-delay-us N (default 0: artificial per-batch
                service delay, for load-shedding drills)
              --out FILE (optional: write the throughput/latency report
                as a bench-suite JSON that scripts/bench-compare.sh can
                diff and gate)
              --trace-out FILE (optional: record the serving event log;
                the serve.request histogram carries bucketed p50/p99)
              Shed requests are reported, never fatal: the exit code
              stays 0 under saturation.
  report      Summarise a saved search outcome
              --outcome FILE (required)   --top N (default 5)
  trace summarize
              Render a saved event log as a per-phase timing table
              --trace FILE (required)
  help        Print this message
";

/// Runs one CLI invocation. Returns the process exit code.
///
/// All output goes to stdout; errors are returned as strings for `main`
/// to print on stderr.
///
/// # Errors
///
/// Returns a human-readable message for any argument, IO or pipeline
/// failure.
pub fn run(args: &Args) -> Result<(), String> {
    match args.command() {
        "generate" => generate(args),
        "train-pool" => train_pool(args),
        "evaluate" => evaluate(args),
        "pool list" => pool_list(args),
        "pool add" => pool_add(args),
        "pool remove" => pool_remove(args),
        "pool gc" => pool_gc(args),
        "search" => search(args),
        "matrix" => crate::matrix::matrix(args),
        "serve" => serve(args),
        "loadgen" => loadgen(args),
        "report" => report(args),
        "trace summarize" => trace_summarize(args),
        "help" | "--help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command: {other}\n\n{USAGE}")),
    }
}

fn generate(args: &Args) -> Result<(), String> {
    let out = args.require("out")?;
    let samples = args.get_usize("samples", 8_000)?;
    let seed = args.get_u64("seed", 7)?;
    let mut rng = Rng64::seed(seed);
    let dataset = match args.get("dataset").unwrap_or("isic") {
        "isic" => IsicLike::new().with_num_samples(samples).generate(&mut rng),
        "fitzpatrick" => FitzpatrickLike::new()
            .with_num_samples(samples)
            .generate(&mut rng),
        other => {
            return Err(format!(
                "unknown dataset: {other} (expected isic|fitzpatrick)"
            ))
        }
    };
    dataset.save_json(out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} samples, {} classes, attributes {:?} to {out}",
        dataset.len(),
        dataset.num_classes(),
        dataset.schema().attribute_names()
    );
    Ok(())
}

fn load_split(args: &Args) -> Result<(Dataset, muffin_data::DatasetSplit), String> {
    let data_path = args.require("data")?;
    let dataset = Dataset::load_json(data_path).map_err(|e| e.to_string())?;
    let split_seed = args.get_u64("split-seed", 7)?;
    let split = dataset.split_default(&mut Rng64::seed(split_seed));
    Ok((dataset, split))
}

fn train_pool(args: &Args) -> Result<(), String> {
    let out = args.require("out")?;
    let (_, split) = load_split(args)?;
    let epochs = args.get_u32("epochs", 60)?;
    let seed = args.get_u64("seed", 7)?;

    let requested = args.get_list("archs");
    let architectures: Vec<Architecture> = if requested.is_empty() {
        Architecture::zoo()
    } else {
        requested
            .iter()
            .map(|name| {
                Architecture::by_name(name).ok_or_else(|| format!("unknown architecture: {name}"))
            })
            .collect::<Result<_, _>>()?
    };

    let config = BackboneConfig::default().with_epochs(epochs);
    let mut rng = Rng64::seed(seed);
    let pool = ModelPool::train(&split.train, &architectures, &config, &mut rng);
    pool.save_json(out).map_err(|e| e.to_string())?;
    println!("trained and froze {} models into {out}", pool.len());
    Ok(())
}

fn evaluate(args: &Args) -> Result<(), String> {
    let (_, split) = load_split(args)?;
    let pool = ModelPool::load_json(args.require("pool")?).map_err(|e| e.to_string())?;
    let attr_names: Vec<String> = split
        .test
        .schema()
        .attribute_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut header = vec!["model".to_string(), "accuracy".to_string()];
    header.extend(attr_names.iter().map(|n| format!("U_{n}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);
    for model in pool.iter() {
        let eval = model.evaluate(&split.test);
        let mut row = vec![eval.model.clone(), format!("{:.2}%", eval.accuracy * 100.0)];
        row.extend(
            eval.attributes
                .iter()
                .map(|a| format!("{:.4}", a.unfairness)),
        );
        table.row_owned(row);
    }
    println!("{table}");
    Ok(())
}

fn load_pool(args: &Args) -> Result<(ModelPool, String), String> {
    let path = args.require("pool")?.to_string();
    let pool = ModelPool::load_json(&path).map_err(|e| e.to_string())?;
    Ok((pool, path))
}

/// Resolves `--model NAME|ID` against a pool, returning the model's index
/// and identity. Names win over ids (a name can't be 16 hex digits of an
/// id by accident in practice, but the order makes lookups predictable).
fn find_pool_model(pool: &ModelPool, selector: &str) -> Result<(usize, ModelIdentity), String> {
    let manifest = pool.manifest();
    if let Some(entry) = manifest.by_name(selector) {
        let index = manifest
            .index_of_id(entry.id)
            .expect("entry comes from the manifest");
        return Ok((index, entry.clone()));
    }
    if selector.len() == 16 {
        if let Ok(id) = u64::from_str_radix(selector, 16) {
            if let Some(index) = manifest.index_of_id(id) {
                let entry = manifest.get(index).expect("index from the manifest");
                return Ok((index, entry.clone()));
            }
        }
    }
    Err(format!(
        "no pool model named {selector} (nor with that content id); try `muffin pool list`"
    ))
}

fn pool_list(args: &Args) -> Result<(), String> {
    let (pool, path) = load_pool(args)?;
    println!("{path}: {} model(s)", pool.len());
    let mut table = TextTable::new(&["index", "model", "id", "params"]);
    for (index, model) in pool.iter().enumerate() {
        let identity = model.identity();
        table.row_owned(vec![
            index.to_string(),
            identity.name,
            format_model_id(identity.id),
            model.reported_params().to_string(),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn pool_add(args: &Args) -> Result<(), String> {
    let (mut pool, path) = load_pool(args)?;
    let requested = args.get_list("archs");
    if requested.is_empty() {
        return Err("pool add requires --archs naming at least one architecture".into());
    }
    let architectures: Vec<Architecture> = requested
        .iter()
        .map(|name| {
            Architecture::by_name(name).ok_or_else(|| format!("unknown architecture: {name}"))
        })
        .collect::<Result<_, _>>()?;
    for arch in &architectures {
        if pool.by_name(arch.name()).is_some() {
            return Err(format!(
                "model {} is already in the pool; `pool remove` it first to retrain it",
                arch.name()
            ));
        }
    }
    let (_, split) = load_split(args)?;
    let epochs = args.get_u32("epochs", 60)?;
    let seed = args.get_u64("seed", 7)?;
    let config = BackboneConfig::default().with_epochs(epochs);
    let mut rng = Rng64::seed(seed);
    let trained = ModelPool::train(&split.train, &architectures, &config, &mut rng);
    let added: Vec<ModelIdentity> = trained.iter().map(|m| m.identity()).collect();
    pool.extend(trained.iter().cloned());
    pool.save_json(&path).map_err(|e| e.to_string())?;
    println!("appended {} model(s) to {path}:", added.len());
    for identity in &added {
        println!("  {identity}");
    }
    println!(
        "existing models kept their indices: checkpoints and eval caches \
         warm-resume via `muffin search --resume`"
    );
    Ok(())
}

fn pool_remove(args: &Args) -> Result<(), String> {
    let (pool, path) = load_pool(args)?;
    let (index, identity) = find_pool_model(&pool, args.require("model")?)?;
    if let Some(outcome_path) = args.get("outcome") {
        let outcome = SearchOutcome::load_json(outcome_path)?;
        let best = outcome.best();
        if best.model_names.iter().any(|name| name == &identity.name) {
            return Err(format!(
                "refusing to remove {identity}: the best fused candidate in {outcome_path} \
                 unites {}",
                best.model_names.join(" + ")
            ));
        }
    }
    let remaining: ModelPool = pool
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != index)
        .map(|(_, model)| model.clone())
        .collect();
    remaining.save_json(&path).map_err(|e| e.to_string())?;
    println!(
        "removed {identity} from {path}; {} model(s) remain",
        remaining.len()
    );
    println!(
        "note: removal re-indexes the pool — artifacts recorded against the old pool \
         will be rejected naming this model"
    );
    Ok(())
}

fn pool_gc(args: &Args) -> Result<(), String> {
    let (pool, path) = load_pool(args)?;
    let outcome = SearchOutcome::load_json(args.require("outcome")?)?;
    let best = outcome.best();
    let garbage: Vec<ModelIdentity> = pool
        .iter()
        .filter(|model| !best.model_names.iter().any(|name| name == model.name()))
        .map(|model| model.identity())
        .collect();
    if garbage.is_empty() {
        println!("nothing to collect: the best candidate unites every pool model");
        return Ok(());
    }
    let verb = if args.get_flag("dry-run") {
        "would remove"
    } else {
        "removing"
    };
    println!(
        "{verb} {} model(s) not united by the best candidate ({}):",
        garbage.len(),
        best.model_names.join(" + ")
    );
    for identity in &garbage {
        println!("  {identity}");
    }
    if args.get_flag("dry-run") {
        return Ok(());
    }
    let kept: ModelPool = pool
        .iter()
        .filter(|model| best.model_names.iter().any(|name| name == model.name()))
        .cloned()
        .collect();
    kept.save_json(&path).map_err(|e| e.to_string())?;
    println!("{path}: {} model(s) remain", kept.len());
    Ok(())
}

fn search(args: &Args) -> Result<(), String> {
    // Validate every argument before loading any file, so bad flags fail
    // fast even when the inputs are large.
    let out = args.require("out")?;
    let attrs = args.get_list("attrs");
    if attrs.is_empty() {
        return Err("--attrs requires at least one attribute name".into());
    }
    let episodes = args.get_u32("episodes", 150)?;
    let slots = args.get_usize("slots", 2)?;
    let seed = args.get_u64("seed", 7)?;
    let workers = args.get_usize("workers", muffin::available_parallelism())?;
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let batch = args.get_usize("batch", 1)?;
    if batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    let trace_out = args.get("trace-out");
    if let Some(path) = trace_out {
        // Fail before the (long) search if the log can't be written.
        std::fs::write(path, "").map_err(|e| format!("cannot write --trace-out {path}: {e}"))?;
    }

    let checkpoint = args.get("checkpoint").map(std::path::PathBuf::from);
    let checkpoint_every = args.get_u32("checkpoint-every", 10)?;
    let resume = args.get_flag("resume");
    let eval_cache = args.get("eval-cache").map(std::path::PathBuf::from);
    let stop_after = match args.get("stop-after") {
        None => None,
        Some(v) => Some(
            v.parse::<u32>()
                .map_err(|_| format!("--stop-after expects an integer, got {v}"))?,
        ),
    };
    // Sharded-fleet flags. `--shards` flips the whole command into
    // supervisor mode; the rest refine it.
    let sharded_mode = args.get("shards").is_some();
    let shards = args.get_usize("shards", 1)?;
    let islands = args.get_usize("islands", 4)?;
    let exchange_every = args.get_u32("exchange-every", 10)?;
    let elites = args.get_usize("elites", 2)?;
    let screen_budget = args.get_u32("screen-budget", 0)?;
    let shard_dir = args.get("shard-dir").map(std::path::PathBuf::from);
    if sharded_mode {
        if shard_dir.is_none() {
            return Err("--shards requires --shard-dir".into());
        }
        if checkpoint.is_some() {
            return Err(
                "--checkpoint is not used with --shards; per-shard checkpoints live in --shard-dir"
                    .into(),
            );
        }
        if stop_after.is_some() {
            return Err(
                "--stop-after is not supported with --shards; kill the fleet and rerun with \
                 --resume"
                    .into(),
            );
        }
        if args.get("distill-out").is_some() {
            return Err("--distill-out is not supported with --shards".into());
        }
    } else {
        for flag in [
            "islands",
            "exchange-every",
            "elites",
            "screen-budget",
            "shard-dir",
        ] {
            if args.get(flag).is_some() {
                return Err(format!("--{flag} requires --shards"));
            }
        }
    }
    if resume && checkpoint.is_none() && !sharded_mode {
        return Err("--resume requires --checkpoint".into());
    }
    if stop_after.is_some() && checkpoint.is_none() {
        return Err("--stop-after requires --checkpoint".into());
    }
    if resume && !sharded_mode {
        let path = checkpoint.as_ref().expect("validated above");
        if !path.exists() {
            return Err(format!(
                "cannot resume: checkpoint {} does not exist",
                path.display()
            ));
        }
    }
    // Fail fast on unwritable persistence paths — with a NON-truncating
    // open: unlike the fresh --trace-out log, an existing checkpoint or
    // warm eval cache is exactly the state we must not destroy.
    for (flag, path) in [("--checkpoint", &checkpoint), ("--eval-cache", &eval_cache)] {
        if let Some(path) = path {
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| format!("cannot write {flag} {}: {e}", path.display()))?;
        }
    }

    let tracer = if trace_out.is_some() {
        Tracer::capturing()
    } else {
        Tracer::noop()
    }
    .with_verbose(args.get_flag("verbose"));

    let (_, split) = load_split(args)?;
    let pool = ModelPool::load_json(args.require("pool")?).map_err(|e| e.to_string())?;

    let config = SearchConfig::paper(&attrs)
        .with_episodes(episodes)
        .with_slots(slots)
        .with_reinforce_batch(batch);

    if sharded_mode {
        let sharded = ShardedConfig {
            islands,
            exchange_every,
            elites,
            screen_budget,
            shards,
            island_workers: workers,
            ..ShardedConfig::default()
        };
        let dir = shard_dir.expect("validated above");
        let outcome = run_sharded(
            pool,
            split,
            config,
            &sharded,
            seed,
            &dir,
            resume,
            eval_cache.as_deref(),
            &tracer,
        )
        .map_err(|e| e.to_string())?;
        outcome.save_json(out)?;
        if let Some(path) = trace_out {
            let log = tracer.finish();
            log.save_json(path)?;
            println!("trace log ({} events) written to {path}", log.events.len());
        }
        let best = outcome.best();
        println!(
            "best (episode {}): {} head {} | reward {:.3} acc {:.2}% U {:?}",
            best.first_seen,
            best.model_names.join("+"),
            best.head_desc,
            best.reward,
            best.accuracy * 100.0,
            best.unfairness
        );
        println!(
            "merged {} episodes from {islands} island(s) ({shards} shard slot(s)); \
             full history written to {out}",
            outcome.history.len()
        );
        return Ok(());
    }

    let search = MuffinSearch::new(pool, split, config)
        .map_err(|e| e.to_string())?
        .with_tracer(tracer);
    search.tracer().progress(|| {
        format!(
            "proxy: {} unprivileged samples; space: {} steps; workers: {workers}",
            search.proxy().len(),
            search.space().num_steps()
        )
    });
    let persistence = PersistenceOptions {
        checkpoint: checkpoint.clone(),
        checkpoint_every,
        resume,
        eval_cache,
        halt_after: stop_after,
        ..PersistenceOptions::default()
    };
    let outcome = match search.run_persistent(
        &mut Rng64::seed(seed),
        &WorkerPool::new(workers),
        &persistence,
    ) {
        Ok(outcome) => outcome,
        Err(MuffinError::Halted { episode }) => {
            // Deliberate --stop-after halt: the checkpoint is on disk, so
            // this is a success for the operator, not an error.
            if let Some(path) = trace_out {
                let log = search.tracer().finish();
                log.save_json(path)?;
                println!("trace log ({} events) written to {path}", log.events.len());
            }
            let ckpt = checkpoint
                .as_ref()
                .expect("--stop-after requires --checkpoint");
            println!(
                "search halted at episode {episode}; checkpoint written to {}; \
                 rerun with --resume to continue",
                ckpt.display()
            );
            return Ok(());
        }
        Err(e) => return Err(e.to_string()),
    };
    outcome.save_json(out)?;
    if let Some(path) = trace_out {
        let log = search.tracer().finish();
        log.save_json(path)?;
        println!("trace log ({} events) written to {path}", log.events.len());
    }
    let best = outcome.best();
    if let Some(student_path) = args.get("distill-out") {
        let fusing = search.rebuild(best).map_err(|e| e.to_string())?;
        let hidden: Vec<usize> = args
            .get_list("student-hidden")
            .iter()
            .map(|w| w.parse().map_err(|_| format!("bad student width: {w}")))
            .collect::<Result<Vec<usize>, String>>()?;
        let config = DistillConfig {
            student_hidden: if hidden.is_empty() {
                vec![64, 32]
            } else {
                hidden
            },
            ..DistillConfig::default()
        };
        let distilled = distill_student(
            &fusing,
            search.pool(),
            &search.split().train,
            &config,
            &mut Rng64::seed(seed ^ 0xD15),
        )
        .map_err(|e| e.to_string())?;
        let json = muffin_json::to_string(distilled.student());
        std::fs::write(student_path, json).map_err(|e| e.to_string())?;
        println!(
            "distilled student ({} params, {:.0}x smaller) written to {student_path}",
            distilled.student_params(),
            distilled.compression()
        );
    }
    println!(
        "best (episode {}): {} head {} | reward {:.3} acc {:.2}% U {:?}",
        best.first_seen,
        best.model_names.join("+"),
        best.head_desc,
        best.reward,
        best.accuracy * 100.0,
        best.unfairness
    );
    println!("full history written to {out}");
    Ok(())
}

/// Parses the shared serving-loop flags (`--queue-depth`, `--batch`,
/// `--workers`, `--worker-delay-us`) into a [`ServeConfig`].
fn serve_config(args: &Args) -> Result<ServeConfig, String> {
    let queue_depth = args.get_usize("queue-depth", 64)?;
    if queue_depth == 0 {
        return Err("--queue-depth must be at least 1".into());
    }
    let max_batch = args.get_usize("batch", 16)?;
    if max_batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    let workers = args.get_usize("workers", 2)?;
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let worker_delay = Duration::from_micros(args.get_u64("worker-delay-us", 0)?);
    Ok(ServeConfig {
        queue_depth,
        max_batch,
        workers,
        worker_delay,
    })
}

fn serve(args: &Args) -> Result<(), String> {
    let config = serve_config(args)?;
    let seed = args.get_u64("seed", 7)?;
    let (engine, _) = ServeEngine::demo(seed);
    println!(
        "serving demo fused model: {} features per request, {} classes, \
         {} workers, queue depth {}, max batch {}",
        engine.num_features(),
        engine.num_classes(),
        config.workers,
        config.queue_depth,
        config.max_batch,
    );
    println!("ready (one comma-separated feature row per line; EOF to stop)");
    let (io_result, stats) = serve_scoped(&engine, &config, &Tracer::noop(), |client| {
        use std::io::BufRead as _;
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = line.map_err(|e| format!("cannot read stdin: {e}"))?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let sample: Result<Vec<f32>, String> = line
                .split(',')
                .map(|v| {
                    v.trim()
                        .parse::<f32>()
                        .map_err(|_| format!("not a number: {v}"))
                })
                .collect();
            match sample {
                // Width errors come back from the client as error replies.
                Ok(sample) => match client.request(&sample) {
                    Ok(class) => println!("ok {class}"),
                    Err(err) => println!("error: {err}"),
                },
                Err(msg) => println!("error: invalid request: {msg}"),
            }
        }
        Ok::<(), String>(())
    });
    io_result?;
    println!(
        "served {} ok, {} shed, {} errors in {} batches",
        stats.completed, stats.shed, stats.errors, stats.batches
    );
    Ok(())
}

fn loadgen(args: &Args) -> Result<(), String> {
    let serve = serve_config(args)?;
    let seed = args.get_u64("seed", 7)?;
    let clients = args.get_usize("clients", 4)?;
    if clients == 0 {
        return Err("--clients must be at least 1".into());
    }
    let requests_per_client = args.get_u64("requests", 200)?;
    let out = args.get("out");
    let trace_out = args.get("trace-out");
    // Fail before the run if an archive path can't be written.
    for (flag, path) in [("--out", out), ("--trace-out", trace_out)] {
        if let Some(path) = path {
            std::fs::write(path, "").map_err(|e| format!("cannot write {flag} {path}: {e}"))?;
        }
    }
    let (engine, samples) = ServeEngine::demo(seed);
    let config = LoadgenConfig {
        seed,
        clients,
        requests_per_client,
        serve,
    };
    let tracer = Tracer::capturing().with_verbose(args.get_flag("verbose"));
    let report = run_loadgen(&engine, &samples, &config, &tracer)?;
    if let Some(path) = out {
        std::fs::write(path, report.to_bench_suite_json())
            .map_err(|e| format!("cannot write --out {path}: {e}"))?;
        println!("report written to {path}");
    }
    if let Some(path) = trace_out {
        let log = tracer.finish();
        log.save_json(path)?;
        println!("trace log ({} events) written to {path}", log.events.len());
    }
    println!(
        "loadgen: {} requests from {} clients -> {} completed, {} shed, \
         {} errors in {} batches ({:.1} req/s)",
        report.requests,
        report.clients,
        report.stats.completed,
        report.stats.shed,
        report.stats.errors,
        report.stats.batches,
        report.throughput_rps(),
    );
    println!(
        "latency (us): p50 {} p99 {} min {} max {} mean {}",
        report.p50_us, report.p99_us, report.min_us, report.max_us, report.mean_us
    );
    Ok(())
}

fn trace_summarize(args: &Args) -> Result<(), String> {
    let log = TraceLog::load_json(args.require("trace")?)?;
    println!("{}", summarize(&log));
    Ok(())
}

fn report(args: &Args) -> Result<(), String> {
    let outcome = SearchOutcome::load_json(args.require("outcome")?)?;
    let top = args.get_usize("top", 5)?;
    println!(
        "{} episodes, {} distinct candidates, targets {:?}\n",
        outcome.history.len(),
        outcome.distinct().len(),
        outcome.target_attributes
    );
    let mut ranked: Vec<_> = outcome.distinct();
    ranked.sort_by(|a, b| {
        b.reward
            .partial_cmp(&a.reward)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut table = TextTable::new(&["rank", "reward", "acc", "unfairness", "body", "head"]);
    for (i, r) in ranked.iter().take(top).enumerate() {
        table.row_owned(vec![
            (i + 1).to_string(),
            format!("{:.3}", r.reward),
            format!("{:.2}%", r.accuracy * 100.0),
            r.unfairness
                .iter()
                .map(|u| format!("{u:.3}"))
                .collect::<Vec<_>>()
                .join("/"),
            r.model_names.join("+"),
            r.head_desc.clone(),
        ]);
    }
    println!("{table}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("muffin_cli_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn unknown_command_mentions_usage() {
        let args = Args::parse_from(["frobnicate"]).expect("parse");
        let err = run(&args).unwrap_err();
        assert!(err.contains("unknown command"));
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn help_succeeds() {
        let args = Args::parse_from(["help"]).expect("parse");
        run(&args).expect("help runs");
    }

    #[test]
    fn generate_requires_out() {
        let args = Args::parse_from(["generate"]).expect("parse");
        assert!(run(&args).unwrap_err().contains("--out"));
    }

    #[test]
    fn generate_rejects_unknown_dataset() {
        let out = tmp("never_written.json");
        let args =
            Args::parse_from(["generate", "--dataset", "cifar", "--out", &out]).expect("parse");
        assert!(run(&args).unwrap_err().contains("unknown dataset"));
    }

    #[test]
    fn full_cli_pipeline_runs() {
        let data = tmp("data.json");
        let pool = tmp("pool.json");
        let outcome = tmp("outcome.json");

        run(&Args::parse_from([
            "generate",
            "--samples",
            "400",
            "--seed",
            "3",
            "--out",
            &data,
        ])
        .expect("parse"))
        .expect("generate");

        run(&Args::parse_from([
            "train-pool",
            "--data",
            &data,
            "--archs",
            "ResNet-18,DenseNet121",
            "--epochs",
            "3",
            "--out",
            &pool,
        ])
        .expect("parse"))
        .expect("train-pool");

        run(&Args::parse_from(["evaluate", "--data", &data, "--pool", &pool]).expect("parse"))
            .expect("evaluate");

        let student = tmp("student.json");
        let trace = tmp("trace.json");
        run(&Args::parse_from([
            "search",
            "--data",
            &data,
            "--pool",
            &pool,
            "--attrs",
            "age,site",
            "--episodes",
            "3",
            "--batch",
            "3",
            "--workers",
            "2",
            "--out",
            &outcome,
            "--distill-out",
            &student,
            "--student-hidden",
            "16",
            "--trace-out",
            &trace,
        ])
        .expect("parse"))
        .expect("search");
        assert!(std::fs::read_to_string(&student)
            .expect("student written")
            .contains("spec"));

        // The trace log parses and records the search structure.
        let log = TraceLog::load_json(&trace).expect("trace log parses");
        assert_eq!(
            log.events
                .iter()
                .filter(|e| e.name == "search.episode")
                .count(),
            3
        );
        assert!(log.events.iter().any(|e| e.name == "search.run"));

        run(&Args::parse_from(["report", "--outcome", &outcome]).expect("parse")).expect("report");
        run(&Args::parse_from(["trace", "summarize", "--trace", &trace]).expect("parse"))
            .expect("trace summarize");

        for f in [data, pool, outcome, student, trace] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn search_rejects_zero_workers() {
        let args = Args::parse_from([
            "search",
            "--data",
            "x.json",
            "--pool",
            "p.json",
            "--attrs",
            "age",
            "--out",
            "o.json",
            "--workers",
            "0",
        ])
        .expect("parse");
        // Rejected before any file is touched: x.json does not exist.
        assert!(run(&args).unwrap_err().contains("--workers"));
    }

    #[test]
    fn search_rejects_non_numeric_batch() {
        let args = Args::parse_from([
            "search", "--data", "x.json", "--pool", "p.json", "--attrs", "age", "--out", "o.json",
            "--batch", "lots",
        ])
        .expect("parse");
        let err = run(&args).unwrap_err();
        assert!(err.contains("--batch") && err.contains("lots"), "{err}");
    }

    #[test]
    fn search_rejects_resume_and_stop_after_without_checkpoint() {
        let base = [
            "search", "--data", "x.json", "--pool", "p.json", "--attrs", "age", "--out", "o.json",
        ];
        let mut with_resume = base.to_vec();
        with_resume.push("--resume");
        let err = run(&Args::parse_from(with_resume).expect("parse")).unwrap_err();
        assert!(
            err.contains("--resume") && err.contains("--checkpoint"),
            "{err}"
        );

        let mut with_stop = base.to_vec();
        with_stop.extend(["--stop-after", "4"]);
        let err = run(&Args::parse_from(with_stop).expect("parse")).unwrap_err();
        assert!(
            err.contains("--stop-after") && err.contains("--checkpoint"),
            "{err}"
        );

        let mut bad_stop = base.to_vec();
        bad_stop.extend(["--checkpoint", "c.json", "--stop-after", "soon"]);
        let err = run(&Args::parse_from(bad_stop).expect("parse")).unwrap_err();
        assert!(
            err.contains("--stop-after") && err.contains("soon"),
            "{err}"
        );
    }

    #[test]
    fn search_sharded_flags_are_cross_validated() {
        let base = [
            "search", "--data", "x.json", "--pool", "p.json", "--attrs", "age", "--out", "o.json",
        ];
        // --shards needs --shard-dir.
        let mut no_dir = base.to_vec();
        no_dir.extend(["--shards", "2"]);
        let err = run(&Args::parse_from(no_dir).expect("parse")).unwrap_err();
        assert!(err.contains("--shard-dir"), "{err}");

        // Per-shard checkpoints live in the shard dir: --checkpoint clashes.
        let mut with_ckpt = base.to_vec();
        with_ckpt.extend([
            "--shards",
            "2",
            "--shard-dir",
            "d",
            "--checkpoint",
            "c.json",
        ]);
        let err = run(&Args::parse_from(with_ckpt).expect("parse")).unwrap_err();
        assert!(err.contains("--checkpoint"), "{err}");

        let mut with_stop = base.to_vec();
        with_stop.extend(["--shards", "2", "--shard-dir", "d", "--stop-after", "4"]);
        let err = run(&Args::parse_from(with_stop).expect("parse")).unwrap_err();
        assert!(err.contains("--stop-after"), "{err}");

        // Fleet-only flags are rejected without --shards.
        let mut islands_only = base.to_vec();
        islands_only.extend(["--islands", "2"]);
        let err = run(&Args::parse_from(islands_only).expect("parse")).unwrap_err();
        assert!(
            err.contains("--islands") && err.contains("--shards"),
            "{err}"
        );
    }

    #[test]
    fn search_rejects_resume_from_a_missing_checkpoint() {
        let args = Args::parse_from([
            "search",
            "--data",
            "x.json",
            "--pool",
            "p.json",
            "--attrs",
            "age",
            "--out",
            "o.json",
            "--checkpoint",
            "/nonexistent-dir/ckpt.json",
            "--resume",
        ])
        .expect("parse");
        let err = run(&args).unwrap_err();
        assert!(err.contains("cannot resume"), "{err}");
    }

    #[test]
    fn search_writability_check_preserves_existing_persistence_files() {
        // The fail-fast writability probe for --checkpoint/--eval-cache must
        // not truncate: an existing warm cache is operator state.
        let cache = tmp("warm_cache_probe.json");
        std::fs::write(&cache, "{\"warm\":true}").expect("seed cache");
        let args = Args::parse_from([
            "search",
            "--data",
            "x.json",
            "--pool",
            "p.json",
            "--attrs",
            "age",
            "--out",
            "o.json",
            "--eval-cache",
            &cache,
        ])
        .expect("parse");
        // Fails later (x.json missing), but only after the probe ran.
        assert!(run(&args).is_err());
        assert_eq!(
            std::fs::read_to_string(&cache).expect("cache still readable"),
            "{\"warm\":true}"
        );
        std::fs::remove_file(cache).ok();
    }

    #[test]
    fn search_rejects_unwritable_trace_path_before_running() {
        let args = Args::parse_from([
            "search",
            "--data",
            "x.json",
            "--pool",
            "p.json",
            "--attrs",
            "age",
            "--out",
            "o.json",
            "--trace-out",
            "/nonexistent-dir/trace.json",
        ])
        .expect("parse");
        let err = run(&args).unwrap_err();
        assert!(err.contains("--trace-out"), "{err}");
    }

    #[test]
    fn trace_summarize_requires_a_readable_log() {
        let args = Args::parse_from(["trace", "summarize"]).expect("parse");
        assert!(run(&args).unwrap_err().contains("--trace"));
        let args = Args::parse_from(["trace", "summarize", "--trace", "/nonexistent.json"])
            .expect("parse");
        assert!(run(&args).is_err());
    }

    #[test]
    fn train_pool_rejects_unknown_architecture() {
        let data = tmp("data2.json");
        run(&Args::parse_from(["generate", "--samples", "300", "--out", &data]).expect("parse"))
            .expect("generate");
        let args = Args::parse_from([
            "train-pool",
            "--data",
            &data,
            "--archs",
            "VGG-16",
            "--out",
            "/dev/null",
        ])
        .expect("parse");
        assert!(run(&args).unwrap_err().contains("unknown architecture"));
        std::fs::remove_file(data).ok();
    }
}
