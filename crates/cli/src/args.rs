//! Minimal `--key value` argument parsing, dependency-free.

use std::collections::BTreeMap;

/// Options that are boolean flags: they take no value and parse as `true`
/// when present. Everything else follows the strict `--key value` shape.
const FLAG_OPTIONS: &[&str] = &["verbose", "resume", "dry-run"];

/// Command groups: these subcommands take a second word naming the action
/// (e.g. `muffin trace summarize`), parsed into a two-word command.
const COMMAND_GROUPS: &[&str] = &["trace", "pool"];

/// Parsed command line: a subcommand plus `--key value` options.
///
/// # Example
///
/// ```
/// use muffin_cli::Args;
///
/// let args = Args::parse_from(["search", "--episodes", "50", "--attrs", "age,site"])
///     .expect("valid");
/// assert_eq!(args.command(), "search");
/// assert_eq!(args.get_u32("episodes", 10).unwrap(), 50);
/// assert_eq!(args.get_list("attrs"), vec!["age", "site"]);
/// ```
#[derive(Debug, Clone)]
pub struct Args {
    command: String,
    options: BTreeMap<String, String>,
}

impl Args {
    /// Parses an iterator of arguments (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns a message if no subcommand is present, an option is missing
    /// its value, or a positional argument appears after the subcommand.
    pub fn parse_from<I, S>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut iter = args.into_iter().map(Into::into);
        let mut command = iter.next().ok_or("missing subcommand")?;
        if command.starts_with("--") {
            return Err(format!("expected a subcommand, got option {command}"));
        }
        if COMMAND_GROUPS.contains(&command.as_str()) {
            let action = iter
                .next()
                .ok_or_else(|| format!("{command} expects an action, e.g. {command} summarize"))?;
            if action.starts_with("--") {
                return Err(format!("{command} expects an action, got option {action}"));
            }
            command = format!("{command} {action}");
        }
        let mut options = BTreeMap::new();
        while let Some(key) = iter.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("unexpected positional argument: {key}"));
            };
            if FLAG_OPTIONS.contains(&name) {
                options.insert(name.to_string(), "true".to_string());
                continue;
            }
            let value = iter
                .next()
                .ok_or_else(|| format!("option --{name} is missing its value"))?;
            options.insert(name.to_string(), value);
        }
        Ok(Self { command, options })
    }

    /// Parses the process arguments.
    ///
    /// # Errors
    ///
    /// Same as [`Args::parse_from`].
    pub fn from_env() -> Result<Self, String> {
        Self::parse_from(std::env::args().skip(1))
    }

    /// The subcommand name.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// A raw string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A required string option.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// A `u64` option with a default.
    ///
    /// # Errors
    ///
    /// Returns a message if the value is present but unparsable.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got {v}")),
        }
    }

    /// A `u32` option with a default.
    ///
    /// # Errors
    ///
    /// Returns a message if the value is present but unparsable.
    pub fn get_u32(&self, key: &str, default: u32) -> Result<u32, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got {v}")),
        }
    }

    /// A `usize` option with a default.
    ///
    /// # Errors
    ///
    /// Returns a message if the value is present but unparsable.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got {v}")),
        }
    }

    /// Whether a boolean flag (`--verbose` or `--resume`) was supplied.
    pub fn get_flag(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// A comma-separated list option (empty vec when absent).
    pub fn get_list(&self, key: &str) -> Vec<&str> {
        self.get(key)
            .map(|v| {
                v.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Names of options that were supplied.
    pub fn option_names(&self) -> impl Iterator<Item = &str> {
        self.options.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subcommand_and_options() {
        let args =
            Args::parse_from(["generate", "--samples", "500", "--out", "x.json"]).expect("valid");
        assert_eq!(args.command(), "generate");
        assert_eq!(args.get("out"), Some("x.json"));
        assert_eq!(args.get_usize("samples", 0).unwrap(), 500);
    }

    #[test]
    fn missing_subcommand_is_an_error() {
        assert!(Args::parse_from(Vec::<String>::new()).is_err());
        assert!(Args::parse_from(["--oops", "1"]).is_err());
    }

    #[test]
    fn dangling_option_is_an_error() {
        let err = Args::parse_from(["run", "--seed"]).unwrap_err();
        assert!(err.contains("--seed"));
    }

    #[test]
    fn positional_after_subcommand_is_an_error() {
        assert!(Args::parse_from(["run", "stray"]).is_err());
    }

    #[test]
    fn defaults_apply_when_absent() {
        let args = Args::parse_from(["run"]).expect("valid");
        assert_eq!(args.get_u64("seed", 7).unwrap(), 7);
        assert!(args.get_list("attrs").is_empty());
        assert!(args.require("data").is_err());
    }

    #[test]
    fn unparsable_numbers_are_reported() {
        let args = Args::parse_from(["run", "--seed", "abc"]).expect("valid");
        let err = args.get_u64("seed", 0).unwrap_err();
        assert!(err.contains("abc"));
    }

    #[test]
    fn list_trims_and_skips_empties() {
        let args = Args::parse_from(["run", "--attrs", " age, ,site "]).expect("valid");
        assert_eq!(args.get_list("attrs"), vec!["age", "site"]);
    }

    #[test]
    fn verbose_flag_takes_no_value() {
        let args = Args::parse_from(["search", "--verbose", "--seed", "3"]).expect("valid");
        assert!(args.get_flag("verbose"));
        assert_eq!(args.get_u64("seed", 0).unwrap(), 3);

        let args = Args::parse_from(["search", "--seed", "3", "--verbose"]).expect("valid");
        assert!(args.get_flag("verbose"));

        let args = Args::parse_from(["search"]).expect("valid");
        assert!(!args.get_flag("verbose"));
    }

    #[test]
    fn resume_flag_takes_no_value() {
        let args =
            Args::parse_from(["search", "--resume", "--checkpoint", "c.json"]).expect("valid");
        assert!(args.get_flag("resume"));
        assert_eq!(args.get("checkpoint"), Some("c.json"));
        assert!(!Args::parse_from(["search"])
            .expect("valid")
            .get_flag("resume"));
    }

    #[test]
    fn pool_group_and_dry_run_flag_parse() {
        let args = Args::parse_from(["pool", "gc", "--pool", "p.json", "--dry-run"]).expect("valid");
        assert_eq!(args.command(), "pool gc");
        assert!(args.get_flag("dry-run"));
        assert_eq!(args.get("pool"), Some("p.json"));
        assert!(Args::parse_from(["pool"]).is_err());
    }

    #[test]
    fn trace_group_parses_a_two_word_command() {
        let args = Args::parse_from(["trace", "summarize", "--trace", "log.json"]).expect("valid");
        assert_eq!(args.command(), "trace summarize");
        assert_eq!(args.get("trace"), Some("log.json"));
    }

    #[test]
    fn trace_without_action_is_an_error() {
        let err = Args::parse_from(["trace"]).unwrap_err();
        assert!(err.contains("action"), "{err}");
        let err = Args::parse_from(["trace", "--trace", "log.json"]).unwrap_err();
        assert!(err.contains("action"), "{err}");
    }
}
