//! The `muffin matrix` command: a scenario × reward benchmark grid.
//!
//! For every named scenario the command generates the dataset, trains a
//! small off-the-shelf pool, then runs one Muffin search per reward shape
//! and tabulates the best candidate of each cell — accuracy, marginal
//! unfairness and the joint-cell (intersectional) unfairness the marginal
//! scores cannot see. The grid is the experiment `docs/SCENARIOS.md` and
//! `EXPERIMENTS.md` build on: it shows where the paper's Eq. 3 reward and
//! the intersectional variant rank candidates differently.
//!
//! Everything is derived from fixed seeds (`--seed` folded with the
//! scenario name and reward tag — each part's FNV-1a hash is mixed in
//! through a SplitMix64 step, see [`fold_seed`]), cells run
//! independently, and
//! the two report files (`matrix.json`, `matrix.md`) contain no
//! wall-clock data — so the report bytes are identical for every
//! `--workers` count. Timings, when wanted, go to a separate
//! `--bench-out` file shaped for `scripts/bench-compare.sh`.

use crate::Args;
use muffin::{
    fnv1a64, MuffinSearch, PersistenceOptions, RewardKind, Scenario, ScenarioRegistry,
    SearchConfig, TextTable, WorkerPool,
};
use muffin_data::DatasetSplit;
use muffin_models::{Architecture, BackboneConfig, ModelPool};
use muffin_tensor::{Rng64, SplitMix64};
use std::path::{Path, PathBuf};

/// Derives a per-scenario / per-cell seed by folding each part's FNV-1a
/// hash into the accumulator through a SplitMix64 step.
///
/// The previous plain XOR (`seed ^ fnv1a64(a) ^ fnv1a64(b)`) was
/// symmetric and self-cancelling: any two cells whose part hashes XORed
/// to the same value — e.g. swapped (scenario, tag) pairs — silently
/// shared a seed. The multiply-fold makes the accumulator depend on the
/// order and on every bit of every part.
fn fold_seed(base: u64, parts: &[&str]) -> u64 {
    let mut acc = base;
    for part in parts {
        acc = SplitMix64::new(acc ^ fnv1a64(part.as_bytes())).next_u64();
    }
    acc
}

/// One parsed `--rewards` entry: the canonical tag used in reports and
/// cache file names, plus the reward shape it names.
#[derive(Debug)]
struct RewardSpec {
    tag: String,
    kind: RewardKind,
}

/// Parses one reward spec: `paper`, `linear[:lambda]`, `worst` or
/// `intersect`.
fn parse_reward(spec: &str) -> Result<RewardSpec, String> {
    let unknown = || {
        format!("unknown reward `{spec}` (expected paper, linear[:lambda], worst or intersect)")
    };
    if let Some(rest) = spec.strip_prefix("linear") {
        let lambda = match rest.strip_prefix(':') {
            None if rest.is_empty() => 0.5,
            None => return Err(unknown()),
            Some(v) => {
                let lambda: f32 = v
                    .parse()
                    .map_err(|_| format!("reward `{spec}`: lambda must be a number, got {v}"))?;
                if !lambda.is_finite() || lambda < 0.0 {
                    return Err(format!(
                        "reward `{spec}`: lambda must be finite and non-negative"
                    ));
                }
                lambda
            }
        };
        return Ok(RewardSpec {
            tag: spec.to_string(),
            kind: RewardKind::LinearPenalty { lambda },
        });
    }
    let kind = match spec {
        "paper" => RewardKind::PaperRatio,
        "worst" => RewardKind::WorstAttribute,
        "intersect" => RewardKind::IntersectionalRatio,
        _ => return Err(unknown()),
    };
    Ok(RewardSpec {
        tag: spec.to_string(),
        kind,
    })
}

/// One completed grid cell: the best candidate a search with this reward
/// found on this scenario, measured on the validation split.
struct MatrixCell {
    /// Scenario name.
    scenario: String,
    /// Canonical reward tag (`paper`, `linear:0.5`, ...).
    reward: String,
    /// Target attribute names, in reward order.
    attrs: Vec<String>,
    /// Body model names of the best candidate.
    body: Vec<String>,
    /// Head description of the best candidate.
    head: String,
    /// Episodes the search ran.
    episodes_run: usize,
    /// Distinct candidates the search evaluated.
    distinct: usize,
    /// The winning candidate's reward under this cell's reward shape.
    best_reward: f32,
    /// Validation accuracy of the best candidate.
    accuracy: f32,
    /// Marginal unfairness per target attribute, in `attrs` order.
    unfairness: Vec<f32>,
    /// Joint-cell unfairness summed over target-attribute pairs (equals
    /// the marginal sum when fewer than two attributes are targeted).
    joint_unfairness: f32,
}

muffin_json::impl_json!(struct MatrixCell {
    scenario, reward, attrs, body, head, episodes_run, distinct, best_reward,
    accuracy, unfairness, joint_unfairness,
});

/// The full grid report persisted as `matrix.json`.
struct MatrixReport {
    /// Base seed the per-cell seeds are folded from.
    seed: u64,
    /// Episode budget per cell.
    episodes: u32,
    /// REINFORCE batch size per cell.
    batch: usize,
    /// Body slots per candidate.
    slots: usize,
    /// Samples per scenario (0 = each scenario's own default).
    samples: usize,
    /// Backbone training epochs.
    epochs: u32,
    /// Pool architectures, one pool per scenario.
    architectures: Vec<String>,
    /// Scenario names, in grid row order.
    scenarios: Vec<String>,
    /// Reward tags, in grid column order.
    rewards: Vec<String>,
    /// Cells in row-major (scenario-major) order.
    cells: Vec<MatrixCell>,
}

muffin_json::impl_json!(struct MatrixReport {
    seed, episodes, batch, slots, samples, epochs, architectures, scenarios,
    rewards, cells,
});

/// A scenario ready to be searched: its split and frozen pool.
struct PreparedScenario {
    scenario: Scenario,
    split: DatasetSplit,
    pool: ModelPool,
}

/// Renders one markdown pipe table: scenario rows × reward columns.
fn md_grid(
    title: &str,
    report: &MatrixReport,
    value: impl Fn(&MatrixCell) -> String,
) -> String {
    let mut out = format!("## {title}\n\n| scenario |");
    for tag in &report.rewards {
        out.push_str(&format!(" {tag} |"));
    }
    out.push_str("\n|---|");
    for _ in &report.rewards {
        out.push_str("---:|");
    }
    out.push('\n');
    for (si, name) in report.scenarios.iter().enumerate() {
        out.push_str(&format!("| {name} |"));
        for ri in 0..report.rewards.len() {
            let cell = &report.cells[si * report.rewards.len() + ri];
            out.push_str(&format!(" {} |", value(cell)));
        }
        out.push('\n');
    }
    out.push('\n');
    out
}

/// Renders the full `matrix.md` report. Pure function of the report
/// struct, so the bytes are independent of worker count and wall clock.
fn render_markdown(report: &MatrixReport) -> String {
    let mut out = String::from("# Muffin scenario × reward matrix\n\n");
    out.push_str(&format!(
        "Seed {}, {} episodes per cell (REINFORCE batch {}), {} body slots; \
         pool {} trained for {} epochs per scenario; {}.\n\n",
        report.seed,
        report.episodes,
        report.batch,
        report.slots,
        report.architectures.join(" + "),
        report.epochs,
        if report.samples == 0 {
            "scenario-default sample counts".to_string()
        } else {
            format!("{} samples per scenario", report.samples)
        },
    ));
    out.push_str(&md_grid("Best reward", report, |c| {
        format!("{:.4}", c.best_reward)
    }));
    out.push_str(&md_grid("Accuracy", report, |c| {
        format!("{:.2}%", c.accuracy * 100.0)
    }));
    out.push_str(&md_grid("Joint-cell unfairness U∩", report, |c| {
        format!("{:.4}", c.joint_unfairness)
    }));
    out.push_str("## Best structures\n\n");
    out.push_str("| scenario | reward | body | head | marginal U |\n");
    out.push_str("|---|---|---|---|---|\n");
    for cell in &report.cells {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            cell.scenario,
            cell.reward,
            cell.body.join("+"),
            cell.head,
            cell.attrs
                .iter()
                .zip(&cell.unfairness)
                .map(|(a, u)| format!("{a} {u:.4}"))
                .collect::<Vec<_>>()
                .join(", "),
        ));
    }
    out.push('\n');
    out
}

/// Renders per-cell wall-clock timings as a bench-suite JSON that
/// `scripts/bench-compare.sh` can diff and gate.
fn render_bench_suite(report: &MatrixReport, elapsed_ns: &[u128]) -> String {
    use muffin_json::Json;
    let mut results = Vec::new();
    for (cell, &ns) in report.cells.iter().zip(elapsed_ns) {
        let mut entry = Json::object();
        entry.insert("name", Json::Str(format!("{}/{}", cell.scenario, cell.reward)));
        entry.insert("iters_per_sample", Json::Int(i128::from(report.episodes)));
        entry.insert("samples", Json::Int(1));
        entry.insert("median_ns", Json::Float(ns as f64));
        entry.insert("min_ns", Json::Float(ns as f64));
        entry.insert("max_ns", Json::Float(ns as f64));
        results.push(entry);
    }
    let mut root = Json::object();
    root.insert("suite", Json::Str("matrix".into()));
    root.insert("results", Json::Arr(results));
    let mut text = root.to_string_pretty();
    text.push('\n');
    text
}

/// File-name-safe form of a reward tag (`linear:0.75` → `linear_0.75`).
fn file_tag(tag: &str) -> String {
    tag.replace(':', "_")
}

/// Runs `muffin matrix`. See `USAGE` in `commands.rs` for the flags.
pub(crate) fn matrix(args: &Args) -> Result<(), String> {
    // Validate the whole grid spec before generating or training anything.
    let scenario_specs = args.get_list("scenarios");
    if scenario_specs.is_empty() {
        return Err("--scenarios requires at least one scenario name or file".into());
    }
    let reward_specs = args.get_list("rewards");
    let reward_specs = if reward_specs.is_empty() {
        vec!["paper", "intersect"]
    } else {
        reward_specs
    };
    let rewards: Vec<RewardSpec> = reward_specs
        .iter()
        .map(|s| parse_reward(s))
        .collect::<Result<_, _>>()?;
    for (i, r) in rewards.iter().enumerate() {
        if rewards[..i].iter().any(|p| p.tag == r.tag) {
            return Err(format!("duplicate reward `{}`", r.tag));
        }
    }
    let episodes = args.get_u32("episodes", 12)?;
    if episodes == 0 {
        return Err("--episodes must be at least 1".into());
    }
    let samples = args.get_usize("samples", 1_200)?;
    let slots = args.get_usize("slots", 2)?;
    let batch = args.get_usize("batch", 4)?;
    if batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    let epochs = args.get_u32("epochs", 6)?;
    let seed = args.get_u64("seed", 7)?;
    let workers = args.get_usize("workers", muffin::available_parallelism())?;
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let out_dir = PathBuf::from(args.get("out-dir").unwrap_or("results/matrix"));
    let cache_dir = args.get("cache-dir").map(PathBuf::from);
    let bench_out = args.get("bench-out");
    let verbose = args.get_flag("verbose");

    let requested_archs = args.get_list("archs");
    let architectures: Vec<Architecture> = if requested_archs.is_empty() {
        vec![
            Architecture::resnet18(),
            Architecture::densenet121(),
            Architecture::mobilenet_v2(),
        ]
    } else {
        requested_archs
            .iter()
            .map(|name| {
                Architecture::by_name(name).ok_or_else(|| format!("unknown architecture: {name}"))
            })
            .collect::<Result<_, _>>()?
    };

    // Resolve every scenario up front: an unknown name or malformed file
    // fails fast, with the registry/parser error verbatim.
    let mut scenarios: Vec<Scenario> = Vec::new();
    for spec in &scenario_specs {
        let mut scenario = ScenarioRegistry::resolve(spec).map_err(|e| e.to_string())?;
        if samples > 0 {
            scenario = scenario.with_num_samples(samples);
        }
        if scenarios.iter().any(|s| s.name() == scenario.name()) {
            return Err(format!("duplicate scenario `{}`", scenario.name()));
        }
        scenarios.push(scenario);
    }

    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("cannot create --out-dir {}: {e}", out_dir.display()))?;
    if let Some(dir) = &cache_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create --cache-dir {}: {e}", dir.display()))?;
    }

    let pool = WorkerPool::new(workers);

    // Phase A — one dataset + frozen model pool per scenario, in parallel.
    // All randomness is folded from the scenario name, so the grid is
    // stable under reordering and additions.
    if verbose {
        eprintln!(
            "matrix: preparing {} scenario(s) on {workers} worker(s)",
            scenarios.len()
        );
    }
    let prepared = pool.map(&scenarios, |_, scenario| {
        let scen_seed = fold_seed(seed, &[scenario.name()]);
        let mut rng = Rng64::seed(scen_seed);
        let dataset = scenario.generator().generate(&mut rng);
        let split = dataset.split_default(&mut rng);
        let config = BackboneConfig::fast().with_epochs(epochs);
        let pool = ModelPool::train(&split.train, &architectures, &config, &mut rng);
        PreparedScenario {
            scenario: scenario.clone(),
            split,
            pool,
        }
    });

    // Phase B — one search per scenario × reward cell, in parallel, each
    // on a serial inner pool (the grid itself is the parallelism). Cells
    // never print; all reporting happens after the index-ordered reduce.
    if verbose {
        eprintln!(
            "matrix: searching {} cell(s) ({} scenario(s) × {} reward(s))",
            prepared.len() * rewards.len(),
            prepared.len(),
            rewards.len()
        );
    }
    let grid: Vec<(usize, usize)> = (0..prepared.len())
        .flat_map(|si| (0..rewards.len()).map(move |ri| (si, ri)))
        .collect();
    let outcomes = pool.map(&grid, |_, &(si, ri)| {
        run_cell(&prepared[si], &rewards[ri], cache_dir.as_deref(), CellParams {
            seed,
            episodes,
            slots,
            batch,
        })
    });
    let mut cells = Vec::with_capacity(outcomes.len());
    let mut elapsed_ns = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        let (cell, ns) = outcome?;
        cells.push(cell);
        elapsed_ns.push(ns);
    }

    let report = MatrixReport {
        seed,
        episodes,
        batch,
        slots,
        samples,
        epochs,
        architectures: architectures.iter().map(|a| a.name().to_string()).collect(),
        scenarios: scenarios.iter().map(|s| s.name().to_string()).collect(),
        rewards: rewards.iter().map(|r| r.tag.clone()).collect(),
        cells,
    };

    let json_path = out_dir.join("matrix.json");
    let mut json_text = muffin_json::to_string_pretty(&report);
    json_text.push('\n');
    std::fs::write(&json_path, json_text)
        .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;
    let md_path = out_dir.join("matrix.md");
    std::fs::write(&md_path, render_markdown(&report))
        .map_err(|e| format!("cannot write {}: {e}", md_path.display()))?;
    if let Some(path) = bench_out {
        std::fs::write(path, render_bench_suite(&report, &elapsed_ns))
            .map_err(|e| format!("cannot write --bench-out {path}: {e}"))?;
        println!("cell timings written to {path}");
    }

    let mut table = TextTable::new(&["scenario", "reward", "best", "acc", "U∩", "body"]);
    for cell in &report.cells {
        table.row_owned(vec![
            cell.scenario.clone(),
            cell.reward.clone(),
            format!("{:.3}", cell.best_reward),
            format!("{:.2}%", cell.accuracy * 100.0),
            format!("{:.4}", cell.joint_unfairness),
            cell.body.join("+"),
        ]);
    }
    println!("{table}");
    println!(
        "matrix: {}×{} grid, {} episodes per cell; report written to {} and {}",
        report.scenarios.len(),
        report.rewards.len(),
        report.episodes,
        md_path.display(),
        json_path.display(),
    );
    Ok(())
}

/// Shared per-cell search knobs.
#[derive(Clone, Copy)]
struct CellParams {
    seed: u64,
    episodes: u32,
    slots: usize,
    batch: usize,
}

/// Runs one grid cell: a full search under the cell's reward shape, then
/// a re-evaluation of the winner for the joint-unfairness columns.
/// Returns the cell plus its wall-clock nanoseconds (reported only via
/// `--bench-out`, never in the deterministic report files).
fn run_cell(
    prepared: &PreparedScenario,
    reward: &RewardSpec,
    cache_dir: Option<&Path>,
    params: CellParams,
) -> Result<(MatrixCell, u128), String> {
    let started = std::time::Instant::now();
    let scenario = &prepared.scenario;
    let attrs: Vec<&str> = scenario.default_attrs().iter().map(String::as_str).collect();
    let label = format!("{} × {}", scenario.name(), reward.tag);
    let config = SearchConfig::fast(&attrs)
        .with_episodes(params.episodes)
        .with_slots(params.slots)
        .with_reinforce_batch(params.batch)
        .with_reward_kind(reward.kind);
    let search = MuffinSearch::new(prepared.pool.clone(), prepared.split.clone(), config)
        .map_err(|e| format!("{label}: {e}"))?;
    let persistence = PersistenceOptions {
        eval_cache: cache_dir
            .map(|dir| dir.join(format!("{}-{}.json", scenario.name(), file_tag(&reward.tag)))),
        ..PersistenceOptions::default()
    };
    let cell_seed = fold_seed(params.seed, &[scenario.name(), &reward.tag]);
    let outcome = search
        .run_persistent(
            &mut Rng64::seed(cell_seed),
            &WorkerPool::serial(),
            &persistence,
        )
        .map_err(|e| format!("{label}: {e}"))?;
    let best = outcome.best();
    // Re-evaluate the winner to read the joint-cell unfairness the search
    // history does not carry (only `intersect` cells optimised for it).
    let candidate = search
        .space()
        .decode(&best.actions)
        .map_err(|e| format!("{label}: {e}"))?;
    let (_, eval) = search
        .evaluate_candidate(&candidate, &search.split().val, best.head_seed)
        .map_err(|e| format!("{label}: {e}"))?;
    let cell = MatrixCell {
        scenario: scenario.name().to_string(),
        reward: reward.tag.clone(),
        attrs: scenario.default_attrs().to_vec(),
        body: best.model_names.clone(),
        head: best.head_desc.clone(),
        episodes_run: outcome.history.len(),
        distinct: outcome.distinct().len(),
        best_reward: best.reward,
        accuracy: eval.accuracy,
        unfairness: best.unfairness.clone(),
        joint_unfairness: eval.multi_joint_unfairness(&attrs),
    };
    Ok((cell, started.elapsed().as_nanos()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reward_specs_parse_and_reject() {
        assert_eq!(parse_reward("paper").unwrap().kind, RewardKind::PaperRatio);
        assert_eq!(
            parse_reward("worst").unwrap().kind,
            RewardKind::WorstAttribute
        );
        assert_eq!(
            parse_reward("intersect").unwrap().kind,
            RewardKind::IntersectionalRatio
        );
        match parse_reward("linear").unwrap().kind {
            RewardKind::LinearPenalty { lambda } => assert!((lambda - 0.5).abs() < 1e-6),
            other => panic!("wrong kind: {other:?}"),
        }
        let spec = parse_reward("linear:0.75").unwrap();
        assert_eq!(spec.tag, "linear:0.75");
        match spec.kind {
            RewardKind::LinearPenalty { lambda } => assert!((lambda - 0.75).abs() < 1e-6),
            other => panic!("wrong kind: {other:?}"),
        }
        assert!(parse_reward("fair").unwrap_err().contains("unknown reward"));
        assert!(parse_reward("linear:x").unwrap_err().contains("lambda"));
        assert!(parse_reward("linear:-1").unwrap_err().contains("lambda"));
        assert!(parse_reward("linearise").unwrap_err().contains("unknown"));
    }

    #[test]
    fn reward_tags_are_file_safe() {
        assert_eq!(file_tag("linear:0.75"), "linear_0.75");
        assert_eq!(file_tag("paper"), "paper");
    }

    #[test]
    fn cell_seeds_are_order_sensitive_and_collision_free() {
        // The old XOR fold was symmetric: swapping (scenario, tag) — or
        // any pair of parts whose hashes XOR to the same value — silently
        // shared one seed. The SplitMix64 fold must not.
        assert_ne!(
            fold_seed(7, &["isic-age", "paper"]),
            fold_seed(7, &["paper", "isic-age"])
        );
        // A crafted XOR collision from the old scheme: parts ("ab", "ba")
        // and ("ba", "ab") of course, but also any base; the fold must
        // separate every grid cell pairwise.
        let scenarios = ["isic-age", "isic-site", "isic-intersect", "fitz-skin"];
        let tags = ["paper", "intersect", "worst", "linear:0.75"];
        let mut seen = std::collections::HashSet::new();
        for s in &scenarios {
            assert!(seen.insert(fold_seed(7, &[s])), "scenario seed collided");
            for t in &tags {
                assert!(seen.insert(fold_seed(7, &[s, t])), "cell seed collided");
            }
        }
        // Pin the exact streams: these constants are part of the grid's
        // reproducibility contract — changing the fold changes every
        // committed matrix artifact.
        assert_eq!(fold_seed(7, &["isic-age"]), 3_428_123_955_328_576_630);
        assert_eq!(
            fold_seed(7, &["isic-age", "paper"]),
            2_214_657_400_447_323_925
        );
        assert_eq!(
            fold_seed(7, &["isic-age", "intersect"]),
            15_723_222_128_181_611_331
        );
    }

    #[test]
    fn markdown_grid_is_row_major_and_fixed_width() {
        let cell = |s: &str, r: &str, v: f32| MatrixCell {
            scenario: s.into(),
            reward: r.into(),
            attrs: vec!["age".into(), "gender".into()],
            body: vec!["ResNet-18".into()],
            head: "[8] relu".into(),
            episodes_run: 2,
            distinct: 2,
            best_reward: v,
            accuracy: 0.5,
            unfairness: vec![0.1, 0.2],
            joint_unfairness: 0.3,
        };
        let report = MatrixReport {
            seed: 7,
            episodes: 2,
            batch: 1,
            slots: 2,
            samples: 400,
            epochs: 2,
            architectures: vec!["ResNet-18".into()],
            scenarios: vec!["a".into(), "b".into()],
            rewards: vec!["paper".into(), "intersect".into()],
            cells: vec![
                cell("a", "paper", 1.0),
                cell("a", "intersect", 2.0),
                cell("b", "paper", 3.0),
                cell("b", "intersect", 4.0),
            ],
        };
        let md = render_markdown(&report);
        assert!(md.contains("| a | 1.0000 | 2.0000 |"), "{md}");
        assert!(md.contains("| b | 3.0000 | 4.0000 |"), "{md}");
        assert!(md.contains("## Accuracy"), "{md}");
        assert!(md.contains("| a | 50.00% | 50.00% |"), "{md}");
        assert!(md.contains("age 0.1000, gender 0.2000"), "{md}");
        // JSON round-trips through the schema the docs describe.
        let back: MatrixReport =
            muffin_json::from_str(&muffin_json::to_string(&report)).expect("round trip");
        assert_eq!(back.cells.len(), 4);
        assert_eq!(back.rewards, report.rewards);
    }

    #[test]
    fn bench_suite_has_the_shape_bench_compare_reads() {
        let report = MatrixReport {
            seed: 7,
            episodes: 2,
            batch: 1,
            slots: 2,
            samples: 0,
            epochs: 2,
            architectures: vec![],
            scenarios: vec!["a".into()],
            rewards: vec!["paper".into()],
            cells: vec![MatrixCell {
                scenario: "a".into(),
                reward: "paper".into(),
                attrs: vec![],
                body: vec![],
                head: String::new(),
                episodes_run: 2,
                distinct: 1,
                best_reward: 0.0,
                accuracy: 0.0,
                unfairness: vec![],
                joint_unfairness: 0.0,
            }],
        };
        let text = render_bench_suite(&report, &[1_234]);
        let json: muffin_json::Json = muffin_json::from_str(&text).expect("parses");
        assert_eq!(
            json.get("suite"),
            Some(&muffin_json::Json::Str("matrix".into()))
        );
        let results = match json.get("results") {
            Some(muffin_json::Json::Arr(items)) => items.clone(),
            other => panic!("missing results: {other:?}"),
        };
        assert_eq!(
            results[0].get("name"),
            Some(&muffin_json::Json::Str("a/paper".into()))
        );
        for key in ["iters_per_sample", "samples", "median_ns", "min_ns", "max_ns"] {
            assert!(results[0].get(key).is_some(), "missing {key}");
        }
    }
}
