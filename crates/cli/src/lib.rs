//! Library backing the `muffin` command-line tool.
//!
//! The CLI drives the full Muffin workflow from the shell, persisting
//! intermediate artefacts as JSON so steps can be repeated independently:
//!
//! ```text
//! muffin generate  --dataset isic --samples 8000 --seed 7 --out data.json
//! muffin train-pool --data data.json --archs ResNet-18,DenseNet121 --out pool.json
//! muffin evaluate  --data data.json --pool pool.json
//! muffin search    --data data.json --pool pool.json --attrs age,site \
//!                  --episodes 150 --out outcome.json
//! muffin report    --outcome outcome.json
//! ```

mod args;
mod commands;
mod matrix;

pub use args::Args;
pub use commands::{run, USAGE};
