//! The `muffin` command-line tool. See [`muffin_cli::USAGE`].

use muffin_cli::{run, Args, USAGE};

fn main() {
    let args = match Args::from_env() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("error: {err}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(err) = run(&args) {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
}
