//! Property-based tests for the SVG chart crate.

use muffin_plot::{nice_ticks, BarChart, LinearScale, LineChart, Marker, ScatterChart};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scale_maps_domain_endpoints_to_range_endpoints(
        lo in -100.0f32..100.0,
        span in 0.1f32..100.0,
        r0 in 0.0f32..500.0,
        r1 in 0.0f32..500.0,
    ) {
        let scale = LinearScale::new((lo, lo + span), (r0, r1));
        prop_assert!((scale.map(lo) - r0).abs() < 1e-2);
        prop_assert!((scale.map(lo + span) - r1).abs() < 1e-2);
    }

    #[test]
    fn scale_is_monotone(
        lo in -50.0f32..50.0,
        span in 0.5f32..50.0,
        t in 0.0f32..1.0,
    ) {
        let scale = LinearScale::new((lo, lo + span), (0.0, 100.0));
        let a = scale.map(lo + span * t * 0.5);
        let b = scale.map(lo + span * t);
        prop_assert!(a <= b + 1e-3);
    }

    #[test]
    fn ticks_lie_within_the_domain(
        lo in -1000.0f32..1000.0,
        span in 0.01f32..1000.0,
        max_ticks in 2usize..12,
    ) {
        let ticks = nice_ticks((lo, lo + span), max_ticks);
        let step_slack = span / max_ticks as f32;
        for &t in &ticks {
            prop_assert!(t >= lo - step_slack, "tick {t} below domain {lo}");
            prop_assert!(t <= lo + span + step_slack, "tick {t} above domain");
        }
        // Never absurdly many ticks.
        prop_assert!(ticks.len() <= 3 * max_ticks + 2);
    }

    #[test]
    fn scatter_chart_renders_valid_svg_for_any_points(
        points in proptest::collection::vec((-100.0f32..100.0, -100.0f32..100.0), 1..30),
    ) {
        let svg = ScatterChart::new("t", "x", "y")
            .series("s", Marker::Circle, &points)
            .render();
        prop_assert!(svg.starts_with("<svg"));
        prop_assert!(svg.trim_end().ends_with("</svg>"));
        prop_assert_eq!(svg.matches("<circle").count(), points.len() + 1); // + legend swatch
        // Every coordinate rendered must be finite (no NaN leaking in).
        prop_assert!(!svg.contains("NaN"));
    }

    #[test]
    fn line_chart_handles_degenerate_series(y in -10.0f32..10.0, n in 1usize..20) {
        // A flat series (degenerate y-domain) must still render.
        let points: Vec<(f32, f32)> = (0..n).map(|i| (i as f32, y)).collect();
        let svg = LineChart::new("t", "x", "y").series("flat", &points).render();
        prop_assert!(svg.contains("<polyline"));
        prop_assert!(!svg.contains("NaN"));
    }

    #[test]
    fn bar_chart_bar_count_matches_values(
        values in proptest::collection::vec(0.01f32..10.0, 1..6),
        categories in 1usize..5,
    ) {
        let mut chart = BarChart::new("t", "y");
        for c in 0..categories {
            chart = chart.category(&format!("c{c}"), &values);
        }
        let svg = chart.render();
        // background + bars
        prop_assert_eq!(svg.matches("<rect").count(), 1 + categories * values.len());
    }
}
