//! Property-based tests for the SVG chart crate, running on the in-repo
//! `muffin-check` harness with pinned seeds.

use muffin_check::{check, prop_assert, prop_assert_eq, Config, Gen};
use muffin_plot::{nice_ticks, BarChart, LinearScale, LineChart, Marker, ScatterChart};

fn cases() -> Config {
    Config::cases(48).with_seed(0x7E45_0004)
}

#[test]
fn scale_maps_domain_endpoints_to_range_endpoints() {
    check(
        "domain endpoints land on range endpoints",
        cases(),
        |g: &mut Gen| {
            (g.f32_in(-100.0, 100.0), g.f32_in(0.1, 100.0), g.f32_in(0.0, 500.0), g.f32_in(0.0, 500.0))
        },
        |&(lo, span, r0, r1)| {
            let scale = LinearScale::new((lo, lo + span), (r0, r1));
            prop_assert!((scale.map(lo) - r0).abs() < 1e-2);
            prop_assert!((scale.map(lo + span) - r1).abs() < 1e-2);
            Ok(())
        },
    );
}

#[test]
fn scale_is_monotone() {
    check(
        "linear scale preserves order",
        cases(),
        |g: &mut Gen| (g.f32_in(-50.0, 50.0), g.f32_in(0.5, 50.0), g.f32_in(0.0, 1.0)),
        |&(lo, span, t)| {
            let scale = LinearScale::new((lo, lo + span), (0.0, 100.0));
            let a = scale.map(lo + span * t * 0.5);
            let b = scale.map(lo + span * t);
            prop_assert!(a <= b + 1e-3);
            Ok(())
        },
    );
}

#[test]
fn ticks_lie_within_the_domain() {
    check(
        "nice_ticks stays in the domain",
        cases(),
        |g: &mut Gen| (g.f32_in(-1000.0, 1000.0), g.f32_in(0.01, 1000.0), g.usize_in(2..=11)),
        |&(lo, span, max_ticks)| {
            let ticks = nice_ticks((lo, lo + span), max_ticks);
            let step_slack = span / max_ticks as f32;
            for &t in &ticks {
                prop_assert!(t >= lo - step_slack, "tick {t} below domain {lo}");
                prop_assert!(t <= lo + span + step_slack, "tick {t} above domain");
            }
            // Never absurdly many ticks.
            prop_assert!(ticks.len() <= 3 * max_ticks + 2);
            Ok(())
        },
    );
}

#[test]
fn scatter_chart_renders_valid_svg_for_any_points() {
    check(
        "scatter output is well-formed SVG",
        cases(),
        |g: &mut Gen| {
            let n = g.usize_in(1..=29);
            (0..n).map(|_| (g.f32_in(-100.0, 100.0), g.f32_in(-100.0, 100.0))).collect::<Vec<_>>()
        },
        |points| {
            let svg = ScatterChart::new("t", "x", "y")
                .series("s", Marker::Circle, points)
                .render();
            prop_assert!(svg.starts_with("<svg"));
            prop_assert!(svg.trim_end().ends_with("</svg>"));
            prop_assert_eq!(svg.matches("<circle").count(), points.len() + 1); // + legend swatch
            // Every coordinate rendered must be finite (no NaN leaking in).
            prop_assert!(!svg.contains("NaN"));
            Ok(())
        },
    );
}

#[test]
fn line_chart_handles_degenerate_series() {
    check(
        "flat series still renders",
        cases(),
        |g: &mut Gen| (g.f32_in(-10.0, 10.0), g.usize_in(1..=19)),
        |&(y, n)| {
            // A flat series (degenerate y-domain) must still render.
            let points: Vec<(f32, f32)> = (0..n).map(|i| (i as f32, y)).collect();
            let svg = LineChart::new("t", "x", "y").series("flat", &points).render();
            prop_assert!(svg.contains("<polyline"));
            prop_assert!(!svg.contains("NaN"));
            Ok(())
        },
    );
}

#[test]
fn bar_chart_bar_count_matches_values() {
    check(
        "one rect per bar plus background",
        cases(),
        |g: &mut Gen| (g.vec_f32(1..=5, 0.01, 10.0), g.usize_in(1..=4)),
        |(values, categories)| {
            let mut chart = BarChart::new("t", "y");
            for c in 0..*categories {
                chart = chart.category(&format!("c{c}"), values);
            }
            let svg = chart.render();
            // background + bars
            prop_assert_eq!(svg.matches("<rect").count(), 1 + categories * values.len());
            Ok(())
        },
    );
}
