/// A linear mapping from a data domain to a pixel range.
///
/// The range may be inverted (`range.0 > range.1`), which is the usual
/// case for y axes in screen coordinates.
///
/// # Example
///
/// ```
/// use muffin_plot::LinearScale;
///
/// let scale = LinearScale::new((0.0, 10.0), (0.0, 100.0));
/// assert_eq!(scale.map(5.0), 50.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearScale {
    domain: (f32, f32),
    range: (f32, f32),
}

impl LinearScale {
    /// Creates a scale. A degenerate domain (`min == max`) is widened by
    /// ±0.5 so mapping stays defined.
    pub fn new(domain: (f32, f32), range: (f32, f32)) -> Self {
        let domain = if (domain.1 - domain.0).abs() < f32::EPSILON {
            (domain.0 - 0.5, domain.1 + 0.5)
        } else {
            domain
        };
        Self { domain, range }
    }

    /// Builds a scale covering `values` with 5% padding on both sides.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn covering(values: impl IntoIterator<Item = f32>, range: (f32, f32)) -> Self {
        let mut min = f32::MAX;
        let mut max = f32::MIN;
        let mut any = false;
        for v in values {
            if v.is_finite() {
                min = min.min(v);
                max = max.max(v);
                any = true;
            }
        }
        assert!(any, "cannot build a scale over no finite values");
        let pad = ((max - min) * 0.05).max(1e-6);
        Self::new((min - pad, max + pad), range)
    }

    /// The data domain.
    pub fn domain(&self) -> (f32, f32) {
        self.domain
    }

    /// Maps a data value into the pixel range (unclamped).
    pub fn map(&self, value: f32) -> f32 {
        let t = (value - self.domain.0) / (self.domain.1 - self.domain.0);
        self.range.0 + t * (self.range.1 - self.range.0)
    }
}

/// Computes up to `max_ticks` human-friendly tick positions covering the
/// domain (multiples of 1, 2 or 5 times a power of ten).
///
/// # Example
///
/// ```
/// let ticks = muffin_plot::nice_ticks((0.0, 1.0), 6);
/// assert!(ticks.contains(&0.0));
/// assert!(ticks.len() <= 7);
/// ```
pub fn nice_ticks(domain: (f32, f32), max_ticks: usize) -> Vec<f32> {
    let (lo, hi) = if domain.0 <= domain.1 { domain } else { (domain.1, domain.0) };
    let span = (hi - lo).max(1e-9);
    let raw_step = span / max_ticks.max(1) as f32;
    let magnitude = 10f32.powf(raw_step.log10().floor());
    let residual = raw_step / magnitude;
    let step = magnitude
        * if residual <= 1.0 {
            1.0
        } else if residual <= 2.0 {
            2.0
        } else if residual <= 5.0 {
            5.0
        } else {
            10.0
        };
    let start = (lo / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = start;
    while t <= hi + step * 1e-3 {
        // Snap tiny float error to zero.
        ticks.push(if t.abs() < step * 1e-6 { 0.0 } else { t });
        t += step;
    }
    ticks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_is_linear_and_inverts() {
        let s = LinearScale::new((0.0, 2.0), (100.0, 0.0)); // inverted range
        assert_eq!(s.map(0.0), 100.0);
        assert_eq!(s.map(2.0), 0.0);
        assert_eq!(s.map(1.0), 50.0);
    }

    #[test]
    fn degenerate_domain_is_widened() {
        let s = LinearScale::new((3.0, 3.0), (0.0, 10.0));
        let y = s.map(3.0);
        assert!(y.is_finite());
        assert!((y - 5.0).abs() < 1e-4);
    }

    #[test]
    fn covering_pads_the_extent() {
        let s = LinearScale::covering([1.0, 2.0, 3.0], (0.0, 1.0));
        assert!(s.domain().0 < 1.0);
        assert!(s.domain().1 > 3.0);
    }

    #[test]
    #[should_panic(expected = "no finite values")]
    fn covering_rejects_empty() {
        LinearScale::covering(std::iter::empty(), (0.0, 1.0));
    }

    #[test]
    fn ticks_are_sorted_and_within_domain() {
        let ticks = nice_ticks((0.13, 0.87), 5);
        assert!(!ticks.is_empty());
        assert!(ticks.windows(2).all(|w| w[0] < w[1]));
        assert!(ticks.iter().all(|&t| t >= 0.13 - 1e-6 && t <= 0.87 + 1e-3));
    }

    #[test]
    fn ticks_use_round_steps() {
        let ticks = nice_ticks((0.0, 10.0), 5);
        // Step should be 2.0 → ticks 0, 2, 4, 6, 8, 10.
        assert_eq!(ticks.len(), 6);
        assert!((ticks[1] - ticks[0] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn reversed_domain_still_produces_ticks() {
        let ticks = nice_ticks((1.0, 0.0), 4);
        assert!(!ticks.is_empty());
    }
}
