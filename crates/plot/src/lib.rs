//! Dependency-free SVG charts for the Muffin experiment figures.
//!
//! The benchmark harness prints every table and figure as text; this crate
//! additionally renders the figure-shaped ones — scatter plots with Pareto
//! frontiers (papers' Fig. 5/7), grouped bars (Fig. 1/6/8) and line charts
//! (Fig. 9b, search curves) — as standalone SVG files. No plotting
//! dependency is pulled in: SVG is generated directly.
//!
//! # Example
//!
//! ```
//! use muffin_plot::{Marker, ScatterChart};
//!
//! let svg = ScatterChart::new("accuracy vs unfairness", "U", "accuracy")
//!     .series("existing", Marker::Circle, &[(0.9, 0.74), (1.1, 0.78)])
//!     .series("muffin", Marker::Triangle, &[(0.8, 0.80)])
//!     .render();
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("muffin"));
//! ```

mod chart;
mod scale;
mod svg;

pub use chart::{BarChart, LineChart, Marker, ScatterChart};
pub use scale::{nice_ticks, LinearScale};
pub use svg::SvgCanvas;
