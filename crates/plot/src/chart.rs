use crate::{nice_ticks, LinearScale, SvgCanvas};

const PALETTE: [&str; 6] = ["#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b"];
const MARGIN_LEFT: f32 = 64.0;
const MARGIN_RIGHT: f32 = 150.0;
const MARGIN_TOP: f32 = 40.0;
const MARGIN_BOTTOM: f32 = 48.0;

/// Marker style for scatter series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Marker {
    /// A filled circle (used for the "existing networks" series).
    Circle,
    /// A filled triangle (used for the "Muffin-Nets" series, matching the
    /// paper's red triangles).
    Triangle,
    /// A filled square.
    Square,
}

struct ScatterSeries {
    label: String,
    marker: Marker,
    points: Vec<(f32, f32)>,
    frontier: Option<Vec<(f32, f32)>>,
}

/// A scatter plot with optional per-series frontier polylines — the shape
/// of the paper's Figures 5 and 7.
///
/// # Example
///
/// ```
/// use muffin_plot::{Marker, ScatterChart};
///
/// let svg = ScatterChart::new("Fig 5a", "U_age", "U_site")
///     .series("existing", Marker::Circle, &[(1.0, 1.5), (0.9, 1.6)])
///     .render();
/// assert!(svg.contains("Fig 5a"));
/// ```
pub struct ScatterChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<ScatterSeries>,
    size: (f32, f32),
}

impl ScatterChart {
    /// Creates an empty chart.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            size: (640.0, 420.0),
        }
    }

    /// Adds a point series.
    pub fn series(mut self, label: &str, marker: Marker, points: &[(f32, f32)]) -> Self {
        self.series.push(ScatterSeries {
            label: label.into(),
            marker,
            points: points.to_vec(),
            frontier: None,
        });
        self
    }

    /// Adds a frontier polyline to the most recently added series.
    ///
    /// # Panics
    ///
    /// Panics if no series has been added yet.
    pub fn frontier(mut self, points: &[(f32, f32)]) -> Self {
        let last = self.series.last_mut().expect("add a series before its frontier");
        let mut sorted = points.to_vec();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        last.frontier = Some(sorted);
        self
    }

    /// Renders the chart to an SVG string.
    pub fn render(&self) -> String {
        let (w, h) = self.size;
        let mut canvas = SvgCanvas::new(w, h);
        let all: Vec<(f32, f32)> =
            self.series.iter().flat_map(|s| s.points.iter().copied()).collect();
        if all.is_empty() {
            canvas.text(MARGIN_LEFT, h / 2.0, 12.0, "(no data)");
            return canvas.render();
        }
        let xs = LinearScale::covering(all.iter().map(|p| p.0), (MARGIN_LEFT, w - MARGIN_RIGHT));
        let ys = LinearScale::covering(all.iter().map(|p| p.1), (h - MARGIN_BOTTOM, MARGIN_TOP));
        draw_frame(&mut canvas, &self.title, &self.x_label, &self.y_label, &xs, &ys, (w, h));

        for (i, series) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            if let Some(frontier) = &series.frontier {
                let pts: Vec<(f32, f32)> =
                    frontier.iter().map(|&(x, y)| (xs.map(x), ys.map(y))).collect();
                canvas.polyline(&pts, color, 1.5);
            }
            for &(x, y) in &series.points {
                let (px, py) = (xs.map(x), ys.map(y));
                match series.marker {
                    Marker::Circle => canvas.circle(px, py, 4.0, color),
                    Marker::Triangle => canvas.triangle(px, py, 5.0, color),
                    Marker::Square => canvas.rect(px - 3.5, py - 3.5, 7.0, 7.0, color),
                }
            }
            let ly = MARGIN_TOP + 16.0 * i as f32;
            match series.marker {
                Marker::Circle => canvas.circle(w - MARGIN_RIGHT + 16.0, ly, 4.0, color),
                Marker::Triangle => canvas.triangle(w - MARGIN_RIGHT + 16.0, ly, 5.0, color),
                Marker::Square => {
                    canvas.rect(w - MARGIN_RIGHT + 12.5, ly - 3.5, 7.0, 7.0, color)
                }
            }
            canvas.text(w - MARGIN_RIGHT + 26.0, ly + 4.0, 11.0, &series.label);
        }
        canvas.render()
    }

    /// Renders and writes the chart to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying IO error.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

/// A grouped bar chart — the shape of the paper's Figures 1, 6 and 8.
///
/// # Example
///
/// ```
/// use muffin_plot::BarChart;
///
/// let svg = BarChart::new("per-group accuracy", "accuracy")
///     .category("group A", &[0.8, 0.9])
///     .category("group B", &[0.5, 0.7])
///     .series_labels(&["ResNet-18", "Muffin"])
///     .render();
/// assert!(svg.contains("group B"));
/// ```
pub struct BarChart {
    title: String,
    y_label: String,
    categories: Vec<(String, Vec<f32>)>,
    series_labels: Vec<String>,
    size: (f32, f32),
}

impl BarChart {
    /// Creates an empty chart.
    pub fn new(title: &str, y_label: &str) -> Self {
        Self {
            title: title.into(),
            y_label: y_label.into(),
            categories: Vec::new(),
            series_labels: Vec::new(),
            size: (720.0, 420.0),
        }
    }

    /// Adds one category (x position) with one bar value per series.
    pub fn category(mut self, label: &str, values: &[f32]) -> Self {
        self.categories.push((label.into(), values.to_vec()));
        self
    }

    /// Names the series (legend entries).
    pub fn series_labels(mut self, labels: &[&str]) -> Self {
        self.series_labels = labels.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Renders the chart to an SVG string.
    pub fn render(&self) -> String {
        let (w, h) = self.size;
        let mut canvas = SvgCanvas::new(w, h);
        let values: Vec<f32> =
            self.categories.iter().flat_map(|(_, v)| v.iter().copied()).collect();
        if values.is_empty() {
            canvas.text(MARGIN_LEFT, h / 2.0, 12.0, "(no data)");
            return canvas.render();
        }
        let max = values.iter().copied().fold(f32::MIN, f32::max).max(1e-6);
        let ys = LinearScale::new((0.0, max * 1.05), (h - MARGIN_BOTTOM, MARGIN_TOP));
        let xs = LinearScale::new(
            (0.0, self.categories.len() as f32),
            (MARGIN_LEFT, w - MARGIN_RIGHT),
        );
        draw_frame(&mut canvas, &self.title, "", &self.y_label, &xs, &ys, (w, h));

        let num_series = self.categories.iter().map(|(_, v)| v.len()).max().unwrap_or(1);
        let slot = xs.map(1.0) - xs.map(0.0);
        let bar_w = (slot * 0.8) / num_series as f32;
        for (c, (label, bars)) in self.categories.iter().enumerate() {
            let x0 = xs.map(c as f32) + slot * 0.1;
            for (s, &v) in bars.iter().enumerate() {
                let color = PALETTE[s % PALETTE.len()];
                let top = ys.map(v);
                let base = ys.map(0.0);
                canvas.rect(x0 + s as f32 * bar_w, top, bar_w * 0.92, base - top, color);
            }
            canvas.text_centered(
                xs.map(c as f32 + 0.5),
                h - MARGIN_BOTTOM + 16.0,
                10.0,
                label,
            );
        }
        for (s, label) in self.series_labels.iter().enumerate() {
            let color = PALETTE[s % PALETTE.len()];
            let ly = MARGIN_TOP + 16.0 * s as f32;
            canvas.rect(w - MARGIN_RIGHT + 10.0, ly - 7.0, 10.0, 10.0, color);
            canvas.text(w - MARGIN_RIGHT + 26.0, ly + 2.0, 11.0, label);
        }
        canvas.render()
    }

    /// Renders and writes the chart to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying IO error.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

/// A multi-series line chart — search curves and the paper's Figure 9(b).
///
/// # Example
///
/// ```
/// use muffin_plot::LineChart;
///
/// let svg = LineChart::new("best-so-far", "episode", "reward")
///     .series("RL", &[(0.0, 1.0), (1.0, 1.4)])
///     .render();
/// assert!(svg.contains("polyline"));
/// ```
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<(String, Vec<(f32, f32)>)>,
    size: (f32, f32),
}

impl LineChart {
    /// Creates an empty chart.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            size: (640.0, 400.0),
        }
    }

    /// Adds a line series.
    pub fn series(mut self, label: &str, points: &[(f32, f32)]) -> Self {
        self.series.push((label.into(), points.to_vec()));
        self
    }

    /// Renders the chart to an SVG string.
    pub fn render(&self) -> String {
        let (w, h) = self.size;
        let mut canvas = SvgCanvas::new(w, h);
        let all: Vec<(f32, f32)> =
            self.series.iter().flat_map(|(_, p)| p.iter().copied()).collect();
        if all.is_empty() {
            canvas.text(MARGIN_LEFT, h / 2.0, 12.0, "(no data)");
            return canvas.render();
        }
        let xs = LinearScale::covering(all.iter().map(|p| p.0), (MARGIN_LEFT, w - MARGIN_RIGHT));
        let ys = LinearScale::covering(all.iter().map(|p| p.1), (h - MARGIN_BOTTOM, MARGIN_TOP));
        draw_frame(&mut canvas, &self.title, &self.x_label, &self.y_label, &xs, &ys, (w, h));
        for (i, (label, points)) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let pts: Vec<(f32, f32)> =
                points.iter().map(|&(x, y)| (xs.map(x), ys.map(y))).collect();
            canvas.polyline(&pts, color, 2.0);
            let ly = MARGIN_TOP + 16.0 * i as f32;
            canvas.line(w - MARGIN_RIGHT + 8.0, ly, w - MARGIN_RIGHT + 22.0, ly, color, 2.0);
            canvas.text(w - MARGIN_RIGHT + 26.0, ly + 4.0, 11.0, label);
        }
        canvas.render()
    }

    /// Renders and writes the chart to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying IO error.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

/// Shared axes/frame/title drawing.
fn draw_frame(
    canvas: &mut SvgCanvas,
    title: &str,
    x_label: &str,
    y_label: &str,
    xs: &LinearScale,
    ys: &LinearScale,
    (w, h): (f32, f32),
) {
    canvas.text_centered((MARGIN_LEFT + w - MARGIN_RIGHT) / 2.0, 20.0, 14.0, title);
    // Axis lines.
    canvas.line(MARGIN_LEFT, MARGIN_TOP, MARGIN_LEFT, h - MARGIN_BOTTOM, "#444", 1.0);
    canvas.line(
        MARGIN_LEFT,
        h - MARGIN_BOTTOM,
        w - MARGIN_RIGHT,
        h - MARGIN_BOTTOM,
        "#444",
        1.0,
    );
    // Ticks.
    for t in nice_ticks(xs.domain(), 6) {
        let px = xs.map(t);
        canvas.line(px, h - MARGIN_BOTTOM, px, h - MARGIN_BOTTOM + 4.0, "#444", 1.0);
        canvas.text_centered(px, h - MARGIN_BOTTOM + 16.0, 10.0, &format_tick(t));
    }
    for t in nice_ticks(ys.domain(), 6) {
        let py = ys.map(t);
        canvas.line(MARGIN_LEFT - 4.0, py, MARGIN_LEFT, py, "#444", 1.0);
        canvas.text(6.0, py + 3.0, 10.0, &format_tick(t));
    }
    if !x_label.is_empty() {
        canvas.text_centered((MARGIN_LEFT + w - MARGIN_RIGHT) / 2.0, h - 10.0, 12.0, x_label);
    }
    if !y_label.is_empty() {
        canvas.text_vertical(16.0, (MARGIN_TOP + h - MARGIN_BOTTOM) / 2.0, 12.0, y_label);
    }
}

fn format_tick(t: f32) -> String {
    if t == 0.0 {
        "0".to_string()
    } else if t.abs() >= 100.0 {
        format!("{t:.0}")
    } else if t.abs() >= 1.0 {
        format!("{t:.1}")
    } else {
        format!("{t:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_renders_points_and_legend() {
        let svg = ScatterChart::new("t", "x", "y")
            .series("a", Marker::Circle, &[(1.0, 2.0)])
            .series("b", Marker::Triangle, &[(2.0, 1.0)])
            .render();
        assert!(svg.contains("<circle"));
        assert!(svg.contains("<polygon"));
        assert!(svg.contains(">a<"));
        assert!(svg.contains(">b<"));
    }

    #[test]
    fn scatter_frontier_is_a_polyline() {
        let svg = ScatterChart::new("t", "x", "y")
            .series("a", Marker::Circle, &[(1.0, 2.0), (2.0, 1.0)])
            .frontier(&[(2.0, 1.0), (1.0, 2.0)])
            .render();
        assert!(svg.contains("<polyline"));
    }

    #[test]
    #[should_panic(expected = "add a series")]
    fn frontier_without_series_panics() {
        let _ = ScatterChart::new("t", "x", "y").frontier(&[(0.0, 0.0)]);
    }

    #[test]
    fn empty_charts_render_placeholders() {
        assert!(ScatterChart::new("t", "x", "y").render().contains("no data"));
        assert!(BarChart::new("t", "y").render().contains("no data"));
        assert!(LineChart::new("t", "x", "y").render().contains("no data"));
    }

    #[test]
    fn bar_chart_draws_one_rect_per_value() {
        let svg = BarChart::new("t", "y")
            .category("c1", &[0.5, 0.7])
            .category("c2", &[0.3, 0.9])
            .series_labels(&["s1", "s2"])
            .render();
        // 4 bars + white background + 2 legend swatches.
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, 1 + 4 + 2);
        assert!(svg.contains("c2"));
        assert!(svg.contains("s1"));
    }

    #[test]
    fn line_chart_draws_each_series() {
        let svg = LineChart::new("t", "x", "y")
            .series("a", &[(0.0, 0.0), (1.0, 1.0)])
            .series("b", &[(0.0, 1.0), (1.0, 0.0)])
            .render();
        assert_eq!(svg.matches("<polyline").count(), 2);
    }

    #[test]
    fn charts_save_to_disk() {
        let path = std::env::temp_dir().join("muffin_chart_test.svg");
        LineChart::new("t", "x", "y")
            .series("a", &[(0.0, 0.0), (1.0, 1.0)])
            .save(&path)
            .expect("save");
        assert!(std::fs::read_to_string(&path).expect("read").contains("<svg"));
        std::fs::remove_file(path).ok();
    }
}
