use std::fmt::Write as _;

/// A minimal SVG document builder.
///
/// Elements are appended in draw order; [`SvgCanvas::render`] wraps them in
/// an `<svg>` root with a white background.
///
/// # Example
///
/// ```
/// use muffin_plot::SvgCanvas;
///
/// let mut canvas = SvgCanvas::new(100.0, 50.0);
/// canvas.circle(10.0, 10.0, 3.0, "#d62728");
/// let svg = canvas.render();
/// assert!(svg.contains("<circle"));
/// ```
#[derive(Debug, Clone)]
pub struct SvgCanvas {
    width: f32,
    height: f32,
    body: String,
}

fn esc(text: &str) -> String {
    text.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

impl SvgCanvas {
    /// Creates an empty canvas of the given pixel size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not positive and finite.
    pub fn new(width: f32, height: f32) -> Self {
        assert!(width > 0.0 && height > 0.0, "canvas dimensions must be positive");
        assert!(width.is_finite() && height.is_finite(), "canvas dimensions must be finite");
        Self { width, height, body: String::new() }
    }

    /// Canvas width in pixels.
    pub fn width(&self) -> f32 {
        self.width
    }

    /// Canvas height in pixels.
    pub fn height(&self) -> f32 {
        self.height
    }

    /// Draws a line segment.
    pub fn line(&mut self, x1: f32, y1: f32, x2: f32, y2: f32, stroke: &str, stroke_width: f32) {
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="{stroke_width}"/>"#
        );
    }

    /// Draws a polyline through the given points.
    pub fn polyline(&mut self, points: &[(f32, f32)], stroke: &str, stroke_width: f32) {
        if points.is_empty() {
            return;
        }
        let coords: Vec<String> =
            points.iter().map(|(x, y)| format!("{x:.2},{y:.2}")).collect();
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="{stroke_width}"/>"#,
            coords.join(" ")
        );
    }

    /// Draws a filled circle.
    pub fn circle(&mut self, cx: f32, cy: f32, r: f32, fill: &str) {
        let _ = writeln!(self.body, r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{fill}"/>"#);
    }

    /// Draws a filled rectangle.
    pub fn rect(&mut self, x: f32, y: f32, w: f32, h: f32, fill: &str) {
        let _ = writeln!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{fill}"/>"#
        );
    }

    /// Draws a filled triangle centred at `(cx, cy)`.
    pub fn triangle(&mut self, cx: f32, cy: f32, r: f32, fill: &str) {
        let pts = [
            (cx, cy - r),
            (cx - 0.866 * r, cy + 0.5 * r),
            (cx + 0.866 * r, cy + 0.5 * r),
        ];
        let coords: Vec<String> = pts.iter().map(|(x, y)| format!("{x:.2},{y:.2}")).collect();
        let _ = writeln!(self.body, r#"<polygon points="{}" fill="{fill}"/>"#, coords.join(" "));
    }

    /// Draws text anchored at its start.
    pub fn text(&mut self, x: f32, y: f32, size: f32, content: &str) {
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size}" font-family="sans-serif">{}</text>"#,
            esc(content)
        );
    }

    /// Draws text centred on `x`.
    pub fn text_centered(&mut self, x: f32, y: f32, size: f32, content: &str) {
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size}" font-family="sans-serif" text-anchor="middle">{}</text>"#,
            esc(content)
        );
    }

    /// Draws text rotated 90° counter-clockwise around its anchor (for
    /// y-axis labels).
    pub fn text_vertical(&mut self, x: f32, y: f32, size: f32, content: &str) {
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size}" font-family="sans-serif" text-anchor="middle" transform="rotate(-90 {x:.2} {y:.2})">{}</text>"#,
            esc(content)
        );
    }

    /// Renders the complete SVG document.
    pub fn render(&self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\">\n<rect width=\"{w}\" height=\"{h}\" fill=\"white\"/>\n{body}</svg>\n",
            w = self.width,
            h = self.height,
            body = self.body
        )
    }

    /// Writes the rendered document to a file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying IO error.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_wraps_elements_in_svg_root() {
        let mut c = SvgCanvas::new(10.0, 10.0);
        c.line(0.0, 0.0, 5.0, 5.0, "black", 1.0);
        let svg = c.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("<line"));
    }

    #[test]
    fn text_is_escaped() {
        let mut c = SvgCanvas::new(10.0, 10.0);
        c.text(0.0, 0.0, 10.0, "a<b & c>d");
        let svg = c.render();
        assert!(svg.contains("a&lt;b &amp; c&gt;d"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn empty_polyline_draws_nothing() {
        let mut c = SvgCanvas::new(10.0, 10.0);
        c.polyline(&[], "red", 1.0);
        assert!(!c.render().contains("polyline"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_canvas_is_rejected() {
        SvgCanvas::new(0.0, 5.0);
    }

    #[test]
    fn save_writes_a_file() {
        let mut c = SvgCanvas::new(20.0, 20.0);
        c.circle(5.0, 5.0, 2.0, "blue");
        let path = std::env::temp_dir().join("muffin_plot_test.svg");
        c.save(&path).expect("save");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.contains("<circle"));
        std::fs::remove_file(path).ok();
    }
}
