#!/bin/sh
# Regenerates every table and figure of the paper at full scale.
set -x
for b in fig1 fig2 fig3 table1 fig5 fig6 fig7 fig8 fig9a fig9b ablation_controller ablation_gating ablation_ensembles ext_three_attrs ext_label_noise ext_distill ablation_reward seeds; do
  cargo run --release -p muffin-bench --bin $b > /root/repo/results/$b.txt 2>&1
done
echo ALL_EXPERIMENTS_DONE
