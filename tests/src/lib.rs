//! Shared helpers for the cross-crate integration tests of the Muffin
//! workspace. The tests themselves live in this package's `tests/`
//! directory.

use muffin::{MuffinSearch, SearchConfig, SearchOutcome, WorkerPool};
use muffin_data::{DatasetSplit, IsicLike};
use muffin_models::{Architecture, BackboneConfig, ModelPool};
use muffin_tensor::Rng64;
use std::path::PathBuf;

/// Builds a small, deterministic ISIC-like split plus a three-model pool —
/// the shared fixture most integration tests start from.
pub fn small_fixture(seed: u64) -> (DatasetSplit, ModelPool, Rng64) {
    let mut rng = Rng64::seed(seed);
    let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
    let pool = ModelPool::train(
        &split.train,
        &[
            Architecture::resnet18(),
            Architecture::densenet121(),
            Architecture::shufflenet_v2_x1_0(),
        ],
        &BackboneConfig::fast(),
        &mut rng,
    );
    (split, pool, rng)
}

/// Seed of the golden-snapshot recipe. Everything about the recipe is
/// frozen: changing any part of it invalidates the committed snapshot.
pub const GOLDEN_SEED: u64 = 20230717;

/// The frozen search the golden snapshot captures: the `small_fixture`
/// pool, two target attributes, 8 episodes with a REINFORCE batch of 3
/// (so the snapshot also pins batched-update and partial-batch behaviour).
pub fn golden_search() -> (MuffinSearch, Rng64) {
    let (split, pool, rng) = small_fixture(GOLDEN_SEED);
    let config = SearchConfig::fast(&["age", "site"])
        .with_episodes(8)
        .with_reinforce_batch(3);
    let search = MuffinSearch::new(pool, split, config).expect("golden recipe is valid");
    (search, rng)
}

/// Runs the golden recipe on `workers` and serialises the outcome exactly
/// as [`SearchOutcome::save_json`] would write it.
pub fn golden_outcome_json(workers: &WorkerPool) -> String {
    let (search, rng) = golden_search();
    let outcome: SearchOutcome = search
        .run_with_pool(&mut rng.clone(), workers)
        .expect("golden search runs");
    muffin_json::to_string(&outcome)
}

/// Path of the committed golden snapshot
/// (`tests/golden/search_outcome.json` from the repository root).
pub fn golden_snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join("search_outcome.json")
}
