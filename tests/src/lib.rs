//! Shared helpers for the cross-crate integration tests of the Muffin
//! workspace. The tests themselves live in this package's `tests/`
//! directory.

use muffin_data::{DatasetSplit, IsicLike};
use muffin_models::{Architecture, BackboneConfig, ModelPool};
use muffin_tensor::Rng64;

/// Builds a small, deterministic ISIC-like split plus a three-model pool —
/// the shared fixture most integration tests start from.
pub fn small_fixture(seed: u64) -> (DatasetSplit, ModelPool, Rng64) {
    let mut rng = Rng64::seed(seed);
    let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
    let pool = ModelPool::train(
        &split.train,
        &[
            Architecture::resnet18(),
            Architecture::densenet121(),
            Architecture::shufflenet_v2_x1_0(),
        ],
        &BackboneConfig::fast(),
        &mut rng,
    );
    (split, pool, rng)
}
