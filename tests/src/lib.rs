//! Shared helpers for the cross-crate integration tests of the Muffin
//! workspace. The tests themselves live in this package's `tests/`
//! directory.

use muffin::{
    MuffinError, MuffinSearch, PersistenceOptions, SearchConfig, SearchOutcome, WorkerPool,
};
use muffin_data::{DatasetSplit, IsicLike};
use muffin_models::{Architecture, BackboneConfig, ModelPool};
use muffin_tensor::Rng64;
use std::path::PathBuf;

/// Builds a small, deterministic ISIC-like split plus a three-model pool —
/// the shared fixture most integration tests start from.
pub fn small_fixture(seed: u64) -> (DatasetSplit, ModelPool, Rng64) {
    let mut rng = Rng64::seed(seed);
    let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
    let pool = ModelPool::train(
        &split.train,
        &[
            Architecture::resnet18(),
            Architecture::densenet121(),
            Architecture::shufflenet_v2_x1_0(),
        ],
        &BackboneConfig::fast(),
        &mut rng,
    );
    (split, pool, rng)
}

/// Seed of the golden-snapshot recipe. Everything about the recipe is
/// frozen: changing any part of it invalidates the committed snapshot.
pub const GOLDEN_SEED: u64 = 20230717;

/// The frozen search the golden snapshot captures: the `small_fixture`
/// pool, two target attributes, 8 episodes with a REINFORCE batch of 3
/// (so the snapshot also pins batched-update and partial-batch behaviour).
pub fn golden_search() -> (MuffinSearch, Rng64) {
    let (split, pool, rng) = small_fixture(GOLDEN_SEED);
    let config = SearchConfig::fast(&["age", "site"])
        .with_episodes(8)
        .with_reinforce_batch(3);
    let search = MuffinSearch::new(pool, split, config).expect("golden recipe is valid");
    (search, rng)
}

/// Runs the golden recipe on `workers` and serialises the outcome exactly
/// as [`SearchOutcome::save_json`] would write it.
pub fn golden_outcome_json(workers: &WorkerPool) -> String {
    let (search, rng) = golden_search();
    let outcome: SearchOutcome = search
        .run_with_pool(&mut rng.clone(), workers)
        .expect("golden search runs");
    muffin_json::to_string(&outcome)
}

/// Path of the committed golden snapshot
/// (`tests/golden/search_outcome.json` from the repository root).
pub fn golden_snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join("search_outcome.json")
}

/// Runs the golden recipe **interrupted**: the first run halts (with a
/// checkpoint) at the first batch boundary at or past `halt_after`, a
/// second run resumes from that checkpoint, and the resumed outcome is
/// serialised exactly as [`SearchOutcome::save_json`] would write it.
///
/// `tag` keeps concurrent tests' checkpoint files apart.
pub fn golden_outcome_json_resumed(workers: &WorkerPool, halt_after: u32, tag: &str) -> String {
    let dir = std::env::temp_dir().join("muffin_golden_resume");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ckpt = dir.join(format!(
        "ckpt_{tag}_{halt_after}_w{}.json",
        workers.workers()
    ));
    std::fs::remove_file(&ckpt).ok();

    let (search, rng) = golden_search();
    let interrupted = search
        .run_persistent(
            &mut rng.clone(),
            workers,
            &PersistenceOptions::checkpoint_to(&ckpt).with_halt_after(halt_after),
        )
        .expect_err("halted run must not complete");
    assert!(
        matches!(interrupted, MuffinError::Halted { .. }),
        "expected Halted, got {interrupted}"
    );

    let (search, rng) = golden_search();
    let outcome = search
        .run_persistent(
            &mut rng.clone(),
            workers,
            &PersistenceOptions::checkpoint_to(&ckpt).with_resume(true),
        )
        .expect("resumed golden search runs");
    std::fs::remove_file(&ckpt).ok();
    muffin_json::to_string(&outcome)
}
