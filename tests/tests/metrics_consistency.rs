//! Cross-crate consistency of the fairness metrics: the paper's Section
//! 3.1 definitions must agree whether computed directly or through
//! `ModelEvaluation`, and the Eq. 3 reward must rank models sensibly.

use muffin::{multi_fairness_reward, unfairness_score, ModelEvaluation, RewardConfig};
use muffin_integration_tests::small_fixture;

#[test]
fn model_evaluation_matches_direct_unfairness_computation() {
    let (split, pool, _) = small_fixture(2000);
    let model = pool.get(0).expect("model");
    let preds = model.predict(split.test.features());
    let eval = model.evaluate(&split.test);

    for (id, attr) in split.test.schema().iter() {
        let direct = unfairness_score(
            &preds,
            split.test.labels(),
            split.test.groups(id),
            attr.num_groups(),
        );
        let via_eval = eval.attribute(attr.name()).expect("attribute").unfairness;
        assert!((direct - via_eval).abs() < 1e-6, "{}: {direct} vs {via_eval}", attr.name());
    }
}

#[test]
fn unfairness_is_bounded_by_group_count() {
    let (split, pool, _) = small_fixture(2100);
    for model in pool.iter() {
        let eval = model.evaluate(&split.test);
        for attr_eval in &eval.attributes {
            let num_groups = split
                .test
                .schema()
                .by_name(&attr_eval.name)
                .and_then(|id| split.test.schema().get(id))
                .expect("attribute")
                .num_groups();
            assert!(attr_eval.unfairness >= 0.0);
            assert!(
                attr_eval.unfairness <= num_groups as f32,
                "{}: U {} exceeds bound {num_groups}",
                attr_eval.name,
                attr_eval.unfairness
            );
        }
    }
}

#[test]
fn reward_ranks_pool_models_consistently_with_its_formula() {
    let (split, pool, _) = small_fixture(2200);
    let cfg = RewardConfig::default();
    for model in pool.iter() {
        let eval = model.evaluate(&split.test);
        let reward = multi_fairness_reward(&eval, &["age", "site"], cfg);
        let manual = eval.accuracy / eval.attribute("age").unwrap().unfairness.max(cfg.epsilon)
            + eval.accuracy / eval.attribute("site").unwrap().unfairness.max(cfg.epsilon);
        assert!((reward - manual).abs() < 1e-5);
        assert!(reward > 0.0);
    }
}

#[test]
fn multi_unfairness_is_additive_over_attributes() {
    let (split, pool, _) = small_fixture(2300);
    let eval: ModelEvaluation = pool.get(0).expect("model").evaluate(&split.test);
    let sum = eval.multi_unfairness(&["age"]) + eval.multi_unfairness(&["site"]);
    assert!((eval.multi_unfairness(&["age", "site"]) - sum).abs() < 1e-6);
}

#[test]
fn gender_attribute_is_designed_fair() {
    // Figure 1(a-b): gender unfairness is small for every model while age
    // and site are large.
    let (split, pool, _) = small_fixture(2400);
    for model in pool.iter() {
        let eval = model.evaluate(&split.test);
        let gender = eval.attribute("gender").unwrap().unfairness;
        let age = eval.attribute("age").unwrap().unfairness;
        let site = eval.attribute("site").unwrap().unfairness;
        assert!(
            gender < age && gender < site,
            "{}: gender {gender} should be the fairest attribute (age {age}, site {site})",
            eval.model
        );
    }
}
