//! Integration tests comparing the three search strategies and the
//! distillation pipeline end to end.

use muffin::{
    distill_student, random_search, successive_halving, DistillConfig, HalvingConfig,
    MuffinSearch, RewardKind, SearchConfig,
};
use muffin_integration_tests::small_fixture;
use muffin_tensor::Rng64;

#[test]
fn all_three_strategies_produce_valid_outcomes() {
    let (split, pool, mut rng) = small_fixture(3000);
    let config = SearchConfig::fast(&["age", "site"]).with_episodes(8);
    let search = MuffinSearch::new(pool, split, config).expect("setup");

    let rl = search.run(&mut rng).expect("rl");
    let random = random_search(&search, &mut Rng64::seed(1)).expect("random");
    let halving = successive_halving(
        &search,
        &HalvingConfig {
            initial_population: 6,
            keep_fraction: 0.5,
            initial_epochs: 2,
            epoch_growth: 2.0,
            rungs: 2,
        },
        &mut Rng64::seed(2),
    )
    .expect("halving");

    for outcome in [&rl, &random, &halving] {
        assert!(!outcome.history.is_empty());
        assert!(outcome.best().reward.is_finite());
        assert!(outcome.best().accuracy > 0.125, "above 8-class chance");
    }
}

#[test]
fn reinforce_batching_changes_the_trajectory_but_stays_valid() {
    let run = |m: usize| {
        let (split, pool, mut rng) = small_fixture(3100);
        let config =
            SearchConfig::fast(&["age", "site"]).with_episodes(8).with_reinforce_batch(m);
        let search = MuffinSearch::new(pool, split, config).expect("setup");
        search.run(&mut rng).expect("run")
    };
    let per_episode = run(1);
    let batched = run(4);
    assert_eq!(per_episode.history.len(), batched.history.len());
    for r in &batched.history {
        assert!(r.reward.is_finite());
    }
}

#[test]
fn alternative_reward_kinds_run_end_to_end() {
    for kind in [
        RewardKind::PaperRatio,
        RewardKind::LinearPenalty { lambda: 0.5 },
        RewardKind::WorstAttribute,
    ] {
        let (split, pool, mut rng) = small_fixture(3200);
        let config =
            SearchConfig::fast(&["age", "site"]).with_episodes(5).with_reward_kind(kind);
        let search = MuffinSearch::new(pool, split, config).expect("setup");
        let outcome = search.run(&mut rng).expect("run");
        assert_eq!(outcome.history.len(), 5, "{kind:?}");
    }
}

#[test]
fn distilled_student_tracks_its_teacher_end_to_end() {
    let (split, pool, mut rng) = small_fixture(3300);
    let config = SearchConfig::fast(&["age", "site"]).with_episodes(6);
    let search = MuffinSearch::new(pool, split.clone(), config).expect("setup");
    let outcome = search.run(&mut rng).expect("run");
    let fusing = search.rebuild(outcome.best()).expect("rebuild");

    let distilled = distill_student(
        &fusing,
        search.pool(),
        &split.train,
        &DistillConfig { epochs: 15, ..DistillConfig::default() },
        &mut rng,
    )
    .expect("distills");

    let teacher = fusing.evaluate(search.pool(), &split.test);
    let student = distilled.evaluate(&split.test);
    assert!(distilled.compression() > 50.0);
    assert!(
        student.accuracy > teacher.accuracy - 0.15,
        "student {} vs teacher {}",
        student.accuracy,
        teacher.accuracy
    );
}

#[test]
fn trust_report_partitions_search_winner_decisions() {
    let (split, pool, mut rng) = small_fixture(3400);
    let config = SearchConfig::fast(&["age", "site"]).with_episodes(6);
    let search = MuffinSearch::new(pool, split.clone(), config).expect("setup");
    let outcome = search.run(&mut rng).expect("run");
    // Use a united candidate so the trust report is meaningful.
    let record = outcome
        .distinct()
        .into_iter()
        .find(|r| r.model_names.len() >= 2)
        .unwrap_or_else(|| outcome.best());
    let fusing = search.rebuild(record).expect("rebuild");
    let report = muffin::TrustReport::analyze(&fusing, search.pool(), &split.test, None);
    let overall = report.overall();
    if overall.disagreements > 0 && report.body.len() == 2 {
        let total = overall.sided_with.iter().sum::<f32>() + overall.invented;
        assert!((total - 1.0).abs() < 1e-4, "partition total {total}");
    }
}
