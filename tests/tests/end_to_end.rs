//! End-to-end integration tests: dataset → pool → search → fused model.

use muffin::{MuffinSearch, SearchConfig};
use muffin_integration_tests::small_fixture;
use muffin_tensor::Rng64;

#[test]
fn full_pipeline_produces_a_working_fused_model() {
    let (split, pool, mut rng) = small_fixture(100);
    let config = SearchConfig::fast(&["age", "site"]).with_episodes(10);
    let search = MuffinSearch::new(pool, split.clone(), config).expect("setup");
    let outcome = search.run(&mut rng).expect("run");
    assert_eq!(outcome.history.len(), 10);

    let fusing = search.rebuild(outcome.best()).expect("rebuild");
    let preds = fusing.predict(search.pool(), split.test.features());
    assert_eq!(preds.len(), split.test.len());
    assert!(preds.iter().all(|&p| p < split.test.num_classes()));

    let eval = fusing.evaluate(search.pool(), &split.test);
    assert!(eval.accuracy > 0.125, "fused model must beat 8-class chance");
    assert_eq!(eval.attributes.len(), 3);
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let run = || {
        let (split, pool, mut rng) = small_fixture(200);
        let config = SearchConfig::fast(&["age", "site"]).with_episodes(6);
        let search = MuffinSearch::new(pool, split, config).expect("setup");
        let outcome = search.run(&mut rng).expect("run");
        outcome
            .history
            .iter()
            .map(|r| (r.actions.clone(), r.reward.to_bits()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_explore_different_candidates() {
    let trajectories: Vec<Vec<Vec<usize>>> = [300u64, 301]
        .iter()
        .map(|&seed| {
            let (split, pool, mut rng) = small_fixture(seed);
            let config = SearchConfig::fast(&["age", "site"]).with_episodes(6);
            let search = MuffinSearch::new(pool, split, config).expect("setup");
            let outcome = search.run(&mut rng).expect("run");
            outcome.history.iter().map(|r| r.actions.clone()).collect()
        })
        .collect();
    assert_ne!(trajectories[0], trajectories[1]);
}

#[test]
fn fused_model_beats_weakest_body_member() {
    let (split, pool, mut rng) = small_fixture(400);
    let config = SearchConfig::fast(&["age", "site"]).with_episodes(12);
    let search = MuffinSearch::new(pool, split.clone(), config).expect("setup");
    let outcome = search.run(&mut rng).expect("run");
    let best = outcome.best();
    let fusing = search.rebuild(best).expect("rebuild");
    let fused_acc = fusing.evaluate(search.pool(), &split.test).accuracy;
    let weakest_body = fusing
        .model_indices()
        .iter()
        .map(|&i| search.pool().get(i).expect("valid").evaluate(&split.test).accuracy)
        .fold(f32::MAX, f32::min);
    assert!(
        fused_acc > weakest_body - 0.05,
        "fused {fused_acc} should not collapse below its weakest body {weakest_body}"
    );
}

#[test]
fn required_model_is_always_in_the_body() {
    let (split, pool, mut rng) = small_fixture(500);
    let required_name = pool.get(1).expect("pool has 3 models").name().to_string();
    let config = SearchConfig::fast(&["age", "site"])
        .with_episodes(8)
        .with_slots(1)
        .with_required_models(vec![1]);
    let search = MuffinSearch::new(pool, split, config).expect("setup");
    let outcome = search.run(&mut rng).expect("run");
    for record in &outcome.history {
        assert_eq!(record.model_names[0], required_name, "required model must lead the body");
    }
}

#[test]
fn search_rejects_out_of_range_required_model() {
    let (split, pool, _) = small_fixture(600);
    let config = SearchConfig::fast(&["age"]).with_required_models(vec![99]);
    assert!(MuffinSearch::new(pool, split, config).is_err());
}

#[test]
fn evaluations_agree_between_direct_and_search_paths() {
    let (split, pool, mut rng) = small_fixture(700);
    let config = SearchConfig::fast(&["age", "site"]).with_episodes(5);
    let search = MuffinSearch::new(pool, split.clone(), config).expect("setup");
    let outcome = search.run(&mut rng).expect("run");
    let record = outcome.best();
    // The recorded validation metrics must match a fresh rebuild evaluated
    // on the validation split.
    let fusing = search.rebuild(record).expect("rebuild");
    let eval = fusing.evaluate(search.pool(), &split.val);
    assert!((eval.accuracy - record.accuracy).abs() < 1e-6);
    for (i, name) in outcome.target_attributes.iter().enumerate() {
        let u = eval.attribute(name).expect("attribute").unfairness;
        assert!((u - record.unfairness[i]).abs() < 1e-6);
    }
}
