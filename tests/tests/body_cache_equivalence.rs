//! The body-output cache is a pure optimisation: a search run with the
//! cache enabled (the default) must produce a [`SearchOutcome`] that is
//! **byte-identical** to a run with it disabled, at every worker count,
//! while recording deterministic hit/miss counters.

use muffin::{MuffinSearch, SearchConfig, SearchOutcome, Tracer, WorkerPool};
use muffin_integration_tests::small_fixture;

fn search_with_cache(enabled: bool) -> (MuffinSearch, muffin_tensor::Rng64) {
    let (split, pool, rng) = small_fixture(4242);
    let config = SearchConfig::fast(&["age", "site"])
        .with_episodes(8)
        .with_reinforce_batch(3);
    let search = MuffinSearch::new(pool, split, config)
        .expect("valid search")
        .with_body_cache(enabled);
    (search, rng)
}

fn outcome_json(enabled: bool, workers: &WorkerPool) -> String {
    let (search, rng) = search_with_cache(enabled);
    let outcome: SearchOutcome = search
        .run_with_pool(&mut rng.clone(), workers)
        .expect("search runs");
    muffin_json::to_string(&outcome)
}

#[test]
fn cached_outcome_is_byte_identical_to_uncached_serial() {
    let serial = WorkerPool::serial();
    assert_eq!(outcome_json(true, &serial), outcome_json(false, &serial));
}

#[test]
fn cached_outcome_is_byte_identical_to_uncached_with_4_workers() {
    let four = WorkerPool::new(4);
    assert_eq!(outcome_json(true, &four), outcome_json(false, &four));
    // And the parallel cached run matches the serial cached run.
    assert_eq!(
        outcome_json(true, &four),
        outcome_json(true, &WorkerPool::serial())
    );
}

#[test]
fn body_cache_counters_appear_in_stripped_traces_and_are_deterministic() {
    let run_traced = |workers: &WorkerPool| {
        let (search, rng) = search_with_cache(true);
        let tracer = Tracer::capturing();
        let search = search.with_tracer(tracer.clone());
        let outcome = search
            .run_with_pool(&mut rng.clone(), workers)
            .expect("traced run");
        (outcome, tracer.finish())
    };
    let (outcome, serial_log) = run_traced(&WorkerPool::serial());
    let (_, parallel_log) = run_traced(&WorkerPool::new(4));

    // The counters exist and carry the expected totals: one miss per
    // (model × split) forward actually run, everything else hits.
    let counter = |log: &muffin::TraceLog, name: &str| {
        log.events
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("missing counter {name}"))
            .data
            .clone()
    };
    let hit = counter(&serial_log, "fusing.body_cache_hit");
    let miss = counter(&serial_log, "fusing.body_cache_miss");
    let miss_total = match miss {
        muffin_trace::EventData::Counter { value } => value,
        other => panic!("miss counter has wrong shape: {other:?}"),
    };
    // 3 pool models × 2 splits (proxy + val) is the ceiling; at least one
    // model must have been evaluated on both splits.
    assert!(
        (2..=6).contains(&miss_total),
        "miss total {miss_total} outside [2, 6]"
    );
    let hit_total = match hit {
        muffin_trace::EventData::Counter { value } => value,
        other => panic!("hit counter has wrong shape: {other:?}"),
    };
    // Every distinct candidate trains (proxy accesses) and evaluates (val
    // accesses); with 8 episodes there are far more accesses than slots.
    assert!(
        hit_total > miss_total,
        "hits {hit_total} vs misses {miss_total}"
    );

    // Stripped logs (timings removed) are byte-identical across worker
    // counts — including the new counters.
    assert_eq!(
        muffin_json::to_string(&serial_log.stripped()),
        muffin_json::to_string(&parallel_log.stripped()),
    );

    // Disabling the cache removes the counters entirely (pre-cache trace
    // shape) without changing the outcome.
    let (search, rng) = search_with_cache(false);
    let tracer = Tracer::capturing();
    let search = search.with_tracer(tracer.clone());
    let uncached = search
        .run_with_pool(&mut rng.clone(), &WorkerPool::serial())
        .expect("uncached traced run");
    let uncached_log = tracer.finish();
    assert!(uncached_log
        .events
        .iter()
        .all(|e| !e.name.starts_with("fusing.body_cache")));
    assert_eq!(
        muffin_json::to_string(&outcome),
        muffin_json::to_string(&uncached)
    );
}
