//! Integration tests for privilege inference and the Algorithm-1 proxy
//! dataset on realistic generated data.

use muffin::{PrivilegeMap, ProxyDataset};
use muffin_data::IsicLike;
use muffin_integration_tests::small_fixture;
use muffin_tensor::Rng64;

#[test]
fn inference_matches_the_designed_disadvantage() {
    let (split, pool, _) = small_fixture(1000);
    let age = split.train.schema().by_name("age").expect("age");
    let site = split.train.schema().by_name("site").expect("site");
    let gender = split.train.schema().by_name("gender").expect("gender");
    let map = PrivilegeMap::infer(&pool, &split.val, &[age, site, gender], 0.02);

    // Designed: age groups 4,5; site groups 5..9 are disadvantaged.
    let found_age = map.unprivileged_groups(age);
    assert!(found_age.contains(&4) && found_age.contains(&5), "age: {found_age:?}");
    let found_site = map.unprivileged_groups(site);
    for g in [6u16, 7] {
        assert!(found_site.contains(&g), "site must flag group {g}: {found_site:?}");
    }
    // Gender was designed fair: at most one borderline group may appear.
    assert!(
        map.unprivileged_groups(gender).len() <= 1,
        "gender should be (nearly) fair: {:?}",
        map.unprivileged_groups(gender)
    );
}

#[test]
fn proxy_support_is_exactly_the_unprivileged_union() {
    let (split, pool, _) = small_fixture(1100);
    let age = split.train.schema().by_name("age").expect("age");
    let site = split.train.schema().by_name("site").expect("site");
    let map = PrivilegeMap::infer(&pool, &split.val, &[age, site], 0.02);
    let proxy = ProxyDataset::build(&split.train, &map).expect("proxy");
    let expected = map.unprivileged_samples(&split.train);
    assert_eq!(proxy.indices(), expected.as_slice());
}

#[test]
fn overlap_samples_receive_strictly_heavier_weights() {
    let ds = IsicLike::small().generate(&mut Rng64::seed(5));
    let age = ds.schema().by_name("age").expect("age");
    let site = ds.schema().by_name("site").expect("site");
    let mut map = PrivilegeMap::new();
    map.set(age, vec![4, 5]);
    map.set(site, vec![5, 6, 7, 8]);
    let proxy = ProxyDataset::build(&ds, &map).expect("proxy");

    let is_unpriv_age = |i: usize| [4usize, 5].contains(&ds.group_of(age, i).index());
    let is_unpriv_site = |i: usize| ds.group_of(site, i).index() >= 5;
    let mut max_single = f32::MIN;
    let mut min_double = f32::MAX;
    let mut doubles = 0;
    for (&i, &w) in proxy.indices().iter().zip(proxy.weights()) {
        if is_unpriv_age(i) && is_unpriv_site(i) {
            min_double = min_double.min(w);
            doubles += 1;
        } else {
            max_single = max_single.max(w);
        }
    }
    assert!(doubles > 0, "correlation must create age∩site overlap");
    assert!(
        min_double > max_single,
        "doubly-unprivileged min {min_double} must exceed singly max {max_single}"
    );
}

#[test]
fn group_weights_are_at_least_one() {
    let (split, pool, _) = small_fixture(1200);
    let age = split.train.schema().by_name("age").expect("age");
    let site = split.train.schema().by_name("site").expect("site");
    let map = PrivilegeMap::infer(&pool, &split.val, &[age, site], 0.02);
    let proxy = ProxyDataset::build(&split.train, &map).expect("proxy");
    // Every member of an unprivileged group has image weight >= 1, so
    // every Algorithm-1 group weight (a mean of image weights) is >= 1.
    for &(_, _, w) in proxy.group_weights() {
        assert!((1.0..=2.0 + 1e-6).contains(&w), "group weight {w} outside [1, 2]");
    }
}

#[test]
fn uniform_proxy_matches_weighted_support_but_not_weights() {
    let (split, pool, _) = small_fixture(1300);
    let age = split.train.schema().by_name("age").expect("age");
    let site = split.train.schema().by_name("site").expect("site");
    let map = PrivilegeMap::infer(&pool, &split.val, &[age, site], 0.02);
    let weighted = ProxyDataset::build(&split.train, &map).expect("proxy");
    let uniform = weighted.with_uniform_weights();
    assert_eq!(weighted.indices(), uniform.indices());
    assert!(uniform.weights().iter().all(|&w| w == 1.0));
    let spread = weighted.weights().iter().copied().fold(f32::MIN, f32::max)
        - weighted.weights().iter().copied().fold(f32::MAX, f32::min);
    assert!(spread > 0.1, "Algorithm 1 weights must be non-uniform, spread {spread}");
}
