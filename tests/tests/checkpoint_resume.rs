//! Checkpoint/resume and persistent-evaluation-cache suite.
//!
//! The contract under test: interrupting a checkpointed search and
//! resuming it — at any worker count, with or without a warm cross-run
//! evaluation cache — produces a `SearchOutcome` byte-identical to the
//! uninterrupted run, and every stale or damaged persistence artifact is
//! rejected loudly instead of silently drifting the trajectory.

use muffin::{
    MuffinError, MuffinSearch, PersistenceOptions, SearchCheckpoint, SearchConfig, Tracer,
    WorkerPool,
};
use muffin_integration_tests::small_fixture;
use muffin_tensor::Rng64;
use std::path::PathBuf;

const SEED: u64 = 4242;

fn search_with(episodes: u32, batch: usize) -> (MuffinSearch, Rng64) {
    let (split, pool, rng) = small_fixture(SEED);
    let config = SearchConfig::fast(&["age", "site"])
        .with_episodes(episodes)
        .with_reinforce_batch(batch);
    (
        MuffinSearch::new(pool, split, config).expect("valid search"),
        rng,
    )
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("muffin_checkpoint_resume_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join(name);
    std::fs::remove_file(&path).ok();
    path
}

fn outcome_json(search: &MuffinSearch, rng: &Rng64, opts: &PersistenceOptions) -> String {
    let outcome = search
        .run_persistent(&mut rng.clone(), &WorkerPool::serial(), opts)
        .expect("search runs");
    muffin_json::to_string(&outcome)
}

#[test]
fn resume_after_halt_is_byte_identical_at_any_worker_count() {
    let (search, rng) = search_with(7, 2);
    let clean = outcome_json(&search, &rng, &PersistenceOptions::default());

    for workers in [1usize, 4] {
        let ckpt = tmp(&format!("halt_resume_w{workers}.json"));
        let pool = WorkerPool::new(workers);
        let halted = search
            .run_persistent(
                &mut rng.clone(),
                &pool,
                &PersistenceOptions::checkpoint_to(&ckpt).with_halt_after(4),
            )
            .expect_err("must halt");
        assert_eq!(halted, MuffinError::Halted { episode: 4 });

        let resumed = search
            .run_persistent(
                &mut rng.clone(),
                &pool,
                &PersistenceOptions::checkpoint_to(&ckpt).with_resume(true),
            )
            .expect("resume runs");
        assert_eq!(
            muffin_json::to_string(&resumed),
            clean,
            "workers = {workers}"
        );
        std::fs::remove_file(ckpt).ok();
    }
}

#[test]
fn resuming_a_finished_run_is_a_noop_with_identical_bytes() {
    let (search, rng) = search_with(5, 2);
    let ckpt = tmp("finished_noop.json");
    let opts = PersistenceOptions::checkpoint_to(&ckpt);
    let clean = outcome_json(&search, &rng, &opts);
    // The final checkpoint (episode 5, a partial batch) is on disk; a
    // resume with the same budget replays history without any new work.
    let resumed = outcome_json(&search, &rng, &opts.clone().with_resume(true));
    assert_eq!(resumed, clean);
    std::fs::remove_file(ckpt).ok();
}

#[test]
fn checkpoint_every_spaces_writes_at_batch_boundaries() {
    let (search, rng) = search_with(9, 3);
    let ckpt = tmp("spacing.json");
    // Boundaries are 3, 6, 9; a 4-episode spacing must skip episode 3,
    // write at 6, and always write the final snapshot at 9.
    let opts = PersistenceOptions::checkpoint_to(&ckpt).with_every(4);
    let tracer = Tracer::capturing();
    let (split, pool) = (search.split().clone(), search.pool().clone());
    let search = MuffinSearch::new(pool, split, search.config().clone())
        .expect("valid")
        .with_tracer(tracer.clone());
    search
        .run_persistent(&mut rng.clone(), &WorkerPool::serial(), &opts)
        .expect("runs");
    assert_eq!(tracer.counter_value("search.checkpoint_write"), 2);
    let final_ckpt = std::fs::read_to_string(&ckpt).expect("checkpoint exists");
    assert!(
        final_ckpt.contains("\"episode\":9"),
        "final snapshot covers the whole run"
    );
    std::fs::remove_file(ckpt).ok();
}

#[test]
fn warm_eval_cache_reports_disk_hits_and_leaves_outcome_unchanged() {
    let (search, rng) = search_with(6, 2);
    let cache = tmp("eval_cache_warm.json");
    let opts = PersistenceOptions::default().with_eval_cache(&cache);

    // Cold run: no disk hits, cache file written at the end.
    let cold_tracer = Tracer::capturing();
    let (split, pool) = (search.split().clone(), search.pool().clone());
    let cold_search = MuffinSearch::new(pool, split, search.config().clone())
        .expect("valid")
        .with_tracer(cold_tracer.clone());
    let cold = cold_search
        .run_persistent(&mut rng.clone(), &WorkerPool::serial(), &opts)
        .expect("cold run");
    assert_eq!(cold_tracer.counter_value("search.cache_hit_disk"), 0);
    assert!(cache.exists(), "cold run must write the cache");

    // Warm run: every episode is served from disk; outcome unchanged.
    let warm_tracer = Tracer::capturing();
    let (split, pool) = (search.split().clone(), search.pool().clone());
    let warm_search = MuffinSearch::new(pool, split, search.config().clone())
        .expect("valid")
        .with_tracer(warm_tracer.clone());
    let warm = warm_search
        .run_persistent(&mut rng.clone(), &WorkerPool::new(3), &opts)
        .expect("warm run");
    let hits = warm_tracer.counter_value("search.cache_hit_disk");
    assert_eq!(hits, 6, "all six episodes served from the disk cache");
    assert_eq!(warm_tracer.counter_value("search.cache_miss"), 0);
    assert_eq!(muffin_json::to_string(&warm), muffin_json::to_string(&cold));
    std::fs::remove_file(cache).ok();
}

#[test]
fn eval_cache_from_a_shorter_run_accelerates_a_longer_one() {
    // Same fingerprint (episode budget excluded): a 4-episode run's cache
    // must serve the first batches of an 8-episode run bit-identically.
    let (short, rng) = search_with(4, 2);
    let cache = tmp("eval_cache_extend.json");
    let opts = PersistenceOptions::default().with_eval_cache(&cache);
    short
        .run_persistent(&mut rng.clone(), &WorkerPool::serial(), &opts)
        .expect("short run");

    let (long, long_rng) = search_with(8, 2);
    let clean = outcome_json(&long, &long_rng, &PersistenceOptions::default());
    let tracer = Tracer::capturing();
    let (split, pool) = (long.split().clone(), long.pool().clone());
    let long = MuffinSearch::new(pool, split, long.config().clone())
        .expect("valid")
        .with_tracer(tracer.clone());
    let warm = long
        .run_persistent(&mut long_rng.clone(), &WorkerPool::serial(), &opts)
        .expect("long warm run");
    assert!(tracer.counter_value("search.cache_hit_disk") >= 1);
    assert_eq!(muffin_json::to_string(&warm), clean);
    std::fs::remove_file(cache).ok();
}

#[test]
fn mismatched_fingerprints_are_rejected_loudly() {
    let (search, rng) = search_with(4, 2);
    let ckpt = tmp("fingerprint_reject.json");
    search
        .run_persistent(
            &mut rng.clone(),
            &WorkerPool::serial(),
            &PersistenceOptions::checkpoint_to(&ckpt),
        )
        .expect("seed run");

    // Different caller seed → different fingerprint → loud rejection.
    let err = search
        .run_persistent(
            &mut Rng64::seed(SEED ^ 1),
            &WorkerPool::serial(),
            &PersistenceOptions::checkpoint_to(&ckpt).with_resume(true),
        )
        .expect_err("wrong seed must be rejected");
    assert!(
        matches!(&err, MuffinError::StaleArtifact(msg) if msg.contains("rng seed/state")),
        "unexpected error: {err}"
    );

    // Different REINFORCE batch → different config fingerprint.
    let (other, other_rng) = search_with(4, 4);
    let err = other
        .run_persistent(
            &mut other_rng.clone(),
            &WorkerPool::serial(),
            &PersistenceOptions::checkpoint_to(&ckpt).with_resume(true),
        )
        .expect_err("different batch must be rejected");
    assert!(
        matches!(&err, MuffinError::StaleArtifact(msg) if msg.contains("configuration")),
        "unexpected error: {err}"
    );

    // Same checkpoint misused as an eval cache: also rejected (different
    // schema ⇒ corrupt), never silently read.
    let err = search
        .run_persistent(
            &mut rng.clone(),
            &WorkerPool::serial(),
            &PersistenceOptions::default().with_eval_cache(&ckpt),
        )
        .expect_err("checkpoint is not an eval cache");
    assert!(
        matches!(err, MuffinError::StaleArtifact(_)),
        "unexpected error: {err}"
    );
    std::fs::remove_file(ckpt).ok();
}

#[test]
fn corrupt_and_truncated_checkpoints_are_rejected() {
    let (search, rng) = search_with(4, 2);
    let ckpt = tmp("corrupt_reject.json");
    search
        .run_persistent(
            &mut rng.clone(),
            &WorkerPool::serial(),
            &PersistenceOptions::checkpoint_to(&ckpt),
        )
        .expect("seed run");

    // Truncate the file mid-JSON, as a crash during a non-atomic write
    // would have left it.
    let full = std::fs::read_to_string(&ckpt).expect("read");
    std::fs::write(&ckpt, &full[..full.len() / 2]).expect("truncate");
    let err = search
        .run_persistent(
            &mut rng.clone(),
            &WorkerPool::serial(),
            &PersistenceOptions::checkpoint_to(&ckpt).with_resume(true),
        )
        .expect_err("truncated checkpoint must be rejected");
    assert!(
        matches!(&err, MuffinError::StaleArtifact(msg) if msg.contains("corrupt")),
        "unexpected error: {err}"
    );

    // Garbage bytes.
    std::fs::write(&ckpt, "not json at all").expect("write");
    assert!(search
        .run_persistent(
            &mut rng.clone(),
            &WorkerPool::serial(),
            &PersistenceOptions::checkpoint_to(&ckpt).with_resume(true),
        )
        .is_err());

    // Missing file.
    std::fs::remove_file(&ckpt).ok();
    let err = search
        .run_persistent(
            &mut rng.clone(),
            &WorkerPool::serial(),
            &PersistenceOptions::checkpoint_to(&ckpt).with_resume(true),
        )
        .expect_err("missing checkpoint must be rejected");
    assert!(matches!(err, MuffinError::Io(_)), "unexpected error: {err}");
}

#[test]
fn mid_batch_checkpoint_cannot_seed_a_longer_run() {
    // 5 episodes at batch 2 ⇒ the final checkpoint sits mid-batch at
    // episode 5. Resuming into an 8-episode run from there would realign
    // the Eq. 4 update boundaries, so it must be rejected.
    let (short, rng) = search_with(5, 2);
    let ckpt = tmp("mid_batch_extend.json");
    short
        .run_persistent(
            &mut rng.clone(),
            &WorkerPool::serial(),
            &PersistenceOptions::checkpoint_to(&ckpt),
        )
        .expect("short run");

    let (long, _) = search_with(8, 2);
    let err = long
        .run_persistent(
            &mut rng.clone(),
            &WorkerPool::serial(),
            &PersistenceOptions::checkpoint_to(&ckpt).with_resume(true),
        )
        .expect_err("mid-batch extension must be rejected");
    assert!(
        matches!(&err, MuffinError::StaleArtifact(msg) if msg.contains("mid-batch")),
        "unexpected error: {err}"
    );
    std::fs::remove_file(ckpt).ok();
}

#[test]
fn boundary_checkpoint_can_seed_a_longer_run() {
    // 4 episodes at batch 2 ends exactly on a boundary; extending to 8
    // episodes from that checkpoint must match the uninterrupted 8-episode
    // run byte for byte (trajectory prefixes are identical).
    let (short, rng) = search_with(4, 2);
    let ckpt = tmp("boundary_extend.json");
    short
        .run_persistent(
            &mut rng.clone(),
            &WorkerPool::serial(),
            &PersistenceOptions::checkpoint_to(&ckpt),
        )
        .expect("short run");

    let (long, _) = search_with(8, 2);
    let clean = outcome_json(&long, &rng, &PersistenceOptions::default());
    let extended = long
        .run_persistent(
            &mut rng.clone(),
            &WorkerPool::serial(),
            &PersistenceOptions::checkpoint_to(&ckpt).with_resume(true),
        )
        .expect("extension runs");
    assert_eq!(muffin_json::to_string(&extended), clean);
    std::fs::remove_file(ckpt).ok();
}

#[test]
fn persistence_options_validate_their_dependencies() {
    let (search, rng) = search_with(3, 1);
    let err = search
        .run_persistent(
            &mut rng.clone(),
            &WorkerPool::serial(),
            &PersistenceOptions::default().with_resume(true),
        )
        .expect_err("resume without checkpoint");
    assert!(matches!(err, MuffinError::InvalidConfig(_)));
    let err = search
        .run_persistent(
            &mut rng.clone(),
            &WorkerPool::serial(),
            &PersistenceOptions::default().with_halt_after(2),
        )
        .expect_err("halt without checkpoint");
    assert!(matches!(err, MuffinError::InvalidConfig(_)));
}

#[test]
fn checkpoint_file_parses_as_the_documented_schema() {
    let (search, rng) = search_with(4, 2);
    let ckpt = tmp("schema.json");
    search
        .run_persistent(
            &mut rng.clone(),
            &WorkerPool::serial(),
            &PersistenceOptions::checkpoint_to(&ckpt),
        )
        .expect("run");
    let text = std::fs::read_to_string(&ckpt).expect("read");
    let parsed: SearchCheckpoint = muffin_json::from_str(&text).expect("schema parses");
    assert_eq!(parsed.version, muffin::CHECKPOINT_VERSION);
    assert_eq!(parsed.episode, 4);
    assert_eq!(parsed.target_episodes, 4);
    assert_eq!(parsed.history.len(), 4);
    assert!(!parsed.cache.is_empty());
    assert!(parsed
        .cache
        .windows(2)
        .all(|w| w[0].actions <= w[1].actions));
    std::fs::remove_file(ckpt).ok();
}
