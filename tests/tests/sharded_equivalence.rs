//! The sharded-search determinism contract: the merged [`SearchOutcome`]
//! depends only on `(seed, config, islands)` — never on the number of
//! concurrent shard slots, per-island worker threads, or which shard
//! finishes first. A fleet sharing one on-disk eval cache must also skip
//! re-evaluating screened candidates (`search.cache_hit_disk > 0`), and
//! re-running a completed fleet with `resume` must be a byte-identical
//! no-op.

use muffin::{
    merge_shard_histories, run_sharded, EpisodeRecord, SearchConfig, SearchSpace, ShardedConfig,
    Tracer,
};
use muffin_integration_tests::small_fixture;
use muffin_nn::Activation;
use std::path::PathBuf;

const FLEET_SEED: u64 = 4242;

/// A 9-point search space over the 3-model fixture pool: small enough
/// that the halving screen plus a few episodes cover most of it, so
/// later islands hit the shared disk cache instead of re-training heads.
fn tiny_space() -> SearchSpace {
    SearchSpace::new(3, 2, vec![2], vec![8], vec![Activation::Relu]).expect("valid space")
}

fn fleet_config() -> SearchConfig {
    SearchConfig::fast(&["age", "site"])
        .with_episodes(24)
        .with_reinforce_batch(2)
        .with_space(tiny_space())
}

fn fleet_sharded(shards: usize, island_workers: usize) -> ShardedConfig {
    ShardedConfig {
        islands: 4,
        exchange_every: 4,
        elites: 2,
        screen_budget: 6,
        screen_rungs: 2,
        screen_keep: 0.5,
        screen_epochs: 2,
        shards,
        island_workers,
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("muffin_sharded_equiv")
        .join(format!("{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Runs one fleet in a fresh directory and returns the outcome JSON plus
/// the finished trace log of the supplied tracer.
fn run_fleet(
    tag: &str,
    shards: usize,
    island_workers: usize,
    resume: bool,
    tracer: &Tracer,
) -> String {
    let (split, pool, _) = small_fixture(FLEET_SEED);
    let dir = if resume {
        // Caller prepared the directory; reuse it.
        std::env::temp_dir()
            .join("muffin_sharded_equiv")
            .join(format!("{tag}_{}", std::process::id()))
    } else {
        fresh_dir(tag)
    };
    let outcome = run_sharded(
        pool,
        split,
        fleet_config(),
        &fleet_sharded(shards, island_workers),
        FLEET_SEED,
        &dir,
        resume,
        None,
        tracer,
    )
    .expect("fleet runs");
    muffin_json::to_string(&outcome)
}

#[test]
fn merged_outcome_is_identical_across_shard_slots_and_workers() {
    let baseline = run_fleet("s1w1", 1, 1, false, &Tracer::noop());
    for (shards, workers) in [(2usize, 1usize), (4, 1), (2, 2), (4, 2)] {
        let json = run_fleet(
            &format!("s{shards}w{workers}"),
            shards,
            workers,
            false,
            &Tracer::noop(),
        );
        assert!(
            json == baseline,
            "merged outcome diverged at shards={shards} island_workers={workers}"
        );
    }
}

#[test]
fn stripped_trace_logs_are_identical_across_shard_slots() {
    let serial = Tracer::capturing();
    run_fleet("trace_s1", 1, 1, false, &serial);
    let serial_stripped = muffin_json::to_string(&serial.finish().stripped());
    for shards in [2usize, 4] {
        let tracer = Tracer::capturing();
        run_fleet(&format!("trace_s{shards}"), shards, 1, false, &tracer);
        assert_eq!(
            muffin_json::to_string(&tracer.finish().stripped()),
            serial_stripped,
            "stripped trace log diverged at {shards} shard slots"
        );
    }
}

#[test]
fn fleet_shares_the_disk_cache_across_islands() {
    let tracer = Tracer::capturing();
    run_fleet("cache_hits", 2, 1, false, &tracer);
    let hits = tracer.counter_value("search.cache_hit_disk");
    assert!(
        hits > 0,
        "a 2-shard fleet over a 9-point space must serve some \
         evaluations from the shared disk cache (got {hits} hits)"
    );
}

#[test]
fn resuming_a_completed_fleet_is_a_byte_identical_noop() {
    let first = run_fleet("resume_done", 2, 1, false, &Tracer::noop());
    let again = run_fleet("resume_done", 2, 1, true, &Tracer::noop());
    assert!(
        first == again,
        "re-running a completed fleet with resume changed the merged outcome"
    );
}

#[test]
fn merge_is_independent_of_shard_completion_order() {
    // Simulates shards finishing in arbitrary order: the reduce sorts by
    // island index before renumbering, so reversed and interleaved
    // completion orders must produce the same bytes.
    let record = |island: usize, episode: u32, reward: f32| EpisodeRecord {
        episode,
        actions: vec![island, episode as usize],
        model_names: vec![format!("m{island}")],
        head_desc: format!("h{island}"),
        accuracy: 0.5,
        unfairness: vec![0.1, 0.2],
        reward,
        head_params: 10,
        total_params: 100,
        head_seed: 7,
        first_seen: episode,
    };
    let shard = |island: usize| {
        (
            island,
            (0..3)
                .map(|e| record(island, e, island as f32 + e as f32 * 0.1))
                .collect::<Vec<_>>(),
        )
    };
    let attrs = || vec!["age".to_string(), "site".to_string()];

    let ordered =
        merge_shard_histories(vec![shard(0), shard(1), shard(2)], attrs()).expect("merges");
    let reversed =
        merge_shard_histories(vec![shard(2), shard(1), shard(0)], attrs()).expect("merges");
    let shuffled =
        merge_shard_histories(vec![shard(1), shard(2), shard(0)], attrs()).expect("merges");

    let ordered_json = muffin_json::to_string(&ordered);
    assert_eq!(ordered_json, muffin_json::to_string(&reversed));
    assert_eq!(ordered_json, muffin_json::to_string(&shuffled));
}
