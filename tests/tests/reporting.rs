//! Integration tests for the reporting surface: text tables, JSON
//! round-trips and SVG rendering built from a real (small) search.

use muffin::{fmt_improvement, fmt_percent, MuffinSearch, SearchConfig, TextTable};
use muffin_integration_tests::small_fixture;
use muffin_plot::{Marker, ScatterChart};

#[test]
fn search_results_render_into_every_reporting_surface() {
    let (split, pool, mut rng) = small_fixture(4000);
    let config = SearchConfig::fast(&["age", "site"]).with_episodes(6);
    let search = MuffinSearch::new(pool, split, config).expect("setup");
    let outcome = search.run(&mut rng).expect("run");

    // Text table.
    let mut table = TextTable::new(&["body", "reward", "acc"]);
    for r in outcome.distinct() {
        table.row_owned(vec![
            r.model_names.join("+"),
            format!("{:.3}", r.reward),
            fmt_percent(r.accuracy),
        ]);
    }
    let text = table.to_string();
    assert!(text.contains("reward"));
    assert!(text.lines().count() >= 3);

    // JSON round-trip.
    let path = std::env::temp_dir().join("muffin_reporting_test.json");
    outcome.save_json(&path).expect("save");
    let loaded = muffin::SearchOutcome::load_json(&path).expect("load");
    assert_eq!(loaded.history.len(), outcome.history.len());
    std::fs::remove_file(&path).ok();

    // SVG scatter of the explored candidates.
    let points: Vec<(f32, f32)> =
        outcome.distinct().iter().map(|r| (r.unfairness[0], r.unfairness[1])).collect();
    let svg = ScatterChart::new("explored candidates", "U_age", "U_site")
        .series("candidates", Marker::Triangle, &points)
        .render();
    assert!(svg.contains("<polygon"));
    assert!(!svg.contains("NaN"));
}

#[test]
fn improvement_formatting_is_symmetric_around_zero() {
    assert_eq!(fmt_improvement(1.0, 0.8), "+20.00%");
    assert_eq!(fmt_improvement(1.0, 1.2), "-20.00%");
    assert_eq!(fmt_improvement(1.0, 1.0), "+0.00%");
}

#[test]
fn percent_formatting_round_trips_common_values() {
    assert_eq!(fmt_percent(0.8055), "80.55%");
    assert_eq!(fmt_percent(0.0), "0.00%");
    assert_eq!(fmt_percent(1.0), "100.00%");
}
