//! The contract of `muffin-par`'s threading through the search: a parallel
//! `MuffinSearch::run` must be **byte-identical** — down to the serialised
//! JSON — to the serial path for the same seed, at every worker count.
//! This is the test `scripts/ci.sh` runs explicitly.

use muffin::{HeadSpec, HeadTrainConfig, MuffinSearch, SearchConfig, WorkerPool};
use muffin_integration_tests::small_fixture;
use muffin_nn::Activation;

fn outcome_json(workers: usize) -> String {
    let (split, pool, mut rng) = small_fixture(4242);
    let config = SearchConfig::fast(&["age", "site"])
        .with_episodes(10)
        .with_reinforce_batch(5);
    let search = MuffinSearch::new(pool, split, config).expect("setup");
    let outcome = search.run_parallel(&mut rng, workers).expect("run");
    muffin_json::to_string(&outcome)
}

#[test]
fn parallel_search_outcome_json_is_byte_identical_to_serial() {
    let serial = outcome_json(1);
    for workers in [2usize, 3, 4, 7] {
        let parallel = outcome_json(workers);
        assert!(
            serial == parallel,
            "outcome JSON diverged between 1 and {workers} workers"
        );
    }
}

#[test]
fn run_and_run_with_pool_serial_agree() {
    let (split, pool, mut rng) = small_fixture(515);
    let config = SearchConfig::fast(&["age", "site"]).with_episodes(6).with_reinforce_batch(3);
    let search = MuffinSearch::new(pool, split, config).expect("setup");
    let a = search.run(&mut rng.clone()).expect("run");
    let b = search.run_with_pool(&mut rng, &WorkerPool::serial()).expect("run_with_pool");
    assert_eq!(muffin_json::to_string(&a), muffin_json::to_string(&b));
}

#[test]
fn fused_batch_inference_is_worker_count_invariant() {
    let (split, pool, mut rng) = small_fixture(626);
    let mut fusing = muffin::FusingStructure::new(
        vec![0, 1],
        HeadSpec::new(vec![16, 8], Activation::Relu),
        &pool,
        &mut rng,
    )
    .expect("valid");
    let age = split.train.schema().by_name("age").expect("age");
    let site = split.train.schema().by_name("site").expect("site");
    let privilege = muffin::PrivilegeMap::infer(&pool, &split.val, &[age, site], 0.02);
    let proxy = muffin::ProxyDataset::build(&split.train, &privilege).expect("proxy");
    fusing.train_head(&pool, &split.train, &proxy, &HeadTrainConfig::fast(), &mut rng);

    let serial = fusing.predict(&pool, split.test.features());
    for workers in [2usize, 5, 16] {
        let pooled =
            fusing.predict_with(&pool, split.test.features(), &WorkerPool::new(workers));
        assert_eq!(serial, pooled, "workers={workers}");
    }
}
