//! The full pipeline on the second dataset: everything must be schema-
//! generic (the Fitzpatrick-like dataset has different attributes, group
//! counts and class count than the ISIC-like one).

use muffin::{MuffinSearch, PrivilegeMap, ProxyDataset, SearchConfig};
use muffin_data::FitzpatrickLike;
use muffin_models::{Architecture, BackboneConfig, ModelPool};
use muffin_tensor::Rng64;

fn fixture() -> (muffin_data::DatasetSplit, ModelPool, Rng64) {
    let mut rng = Rng64::seed(5000);
    let split = FitzpatrickLike::small().generate(&mut rng).split_default(&mut rng);
    let pool = ModelPool::train(
        &split.train,
        &[Architecture::resnet18(), Architecture::mobilenet_v3_large()],
        &BackboneConfig::fast(),
        &mut rng,
    );
    (split, pool, rng)
}

#[test]
fn nine_class_two_attribute_schema_flows_through() {
    let (split, pool, mut rng) = fixture();
    assert_eq!(split.train.num_classes(), 9);
    assert_eq!(split.train.schema().len(), 2);

    let config = SearchConfig::fast(&["skin_tone", "type"]).with_episodes(6);
    let search = MuffinSearch::new(pool, split.clone(), config).expect("setup");
    let outcome = search.run(&mut rng).expect("run");
    let fusing = search.rebuild(outcome.best()).expect("rebuild");
    let eval = fusing.evaluate(search.pool(), &split.test);
    assert!(eval.accuracy > 1.0 / 9.0, "above 9-class chance");
    assert!(eval.attribute("skin_tone").is_some());
    assert!(eval.attribute("type").is_some());
}

#[test]
fn dark_skin_tones_are_inferred_unprivileged() {
    let (split, pool, _) = fixture();
    let tone = split.train.schema().by_name("skin_tone").expect("skin_tone");
    let map = PrivilegeMap::infer(&pool, &split.val, &[tone], 0.02);
    let found = map.unprivileged_groups(tone);
    // Designed unprivileged: types V (4) and VI (5).
    assert!(found.contains(&5), "type VI must be flagged: {found:?}");
    assert!(found.contains(&4), "type V must be flagged: {found:?}");
}

#[test]
fn proxy_weights_reflect_tone_type_overlap() {
    let (split, pool, _) = fixture();
    let tone = split.train.schema().by_name("skin_tone").expect("skin_tone");
    let lesion = split.train.schema().by_name("type").expect("type");
    let map = PrivilegeMap::infer(&pool, &split.val, &[tone, lesion], 0.02);
    let proxy = ProxyDataset::build(&split.train, &map).expect("proxy");
    assert!(!proxy.is_empty());
    let max = proxy.weights().iter().copied().fold(f32::MIN, f32::max);
    let min = proxy.weights().iter().copied().fold(f32::MAX, f32::min);
    assert!(max > min, "correlated attributes must produce non-uniform weights");
}

#[test]
fn single_attribute_targeting_also_works() {
    // Muffin with K = 1 degenerates to single-dimension fairness search —
    // it must still run (the paper's formulation allows any K ≥ 1).
    let (split, pool, mut rng) = fixture();
    let config = SearchConfig::fast(&["skin_tone"]).with_episodes(4);
    let search = MuffinSearch::new(pool, split, config).expect("setup");
    let outcome = search.run(&mut rng).expect("run");
    assert_eq!(outcome.best().unfairness.len(), 1);
}
