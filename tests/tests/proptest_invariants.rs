//! Property-based integration tests over the whole stack: random
//! generator configurations, random search spaces, and random prediction
//! vectors must all uphold the framework's invariants. Runs on the in-repo
//! `muffin-check` harness with pinned seeds.

use muffin::{pareto_min_indices, unfairness_score, SearchSpace};
use muffin_check::{check, prop_assert, prop_assert_eq, Config, Gen, Shrink};
use muffin_data::{AttributeSpec, DataGenerator, GeneratorConfig, GroupSpec};
use muffin_nn::Activation;
use muffin_tensor::Rng64;

fn config() -> Config {
    Config::cases(24).with_seed(0x7E45_0100)
}

/// A random-but-valid generator configuration plus the dataset seed, drawn
/// from the same ranges the old proptest strategy used. Shrinking moves each
/// field toward its domain minimum (never out of range), so every shrink
/// candidate still builds a valid `GeneratorConfig`.
#[derive(Clone, Debug)]
struct ConfigCase {
    num_samples: usize, // 50..300
    feature_dim: usize, // 4..16
    num_classes: usize, // 2..6
    correlation: f32,   // 0..1
    extra_groups: u16,  // 1..4
    dataset_seed: u64,  // 0..500
}

impl ConfigCase {
    fn generate(g: &mut Gen) -> Self {
        Self {
            num_samples: g.usize_in(50..=299),
            feature_dim: g.usize_in(4..=15),
            num_classes: g.usize_in(2..=5),
            correlation: g.f32_in(0.0, 1.0),
            extra_groups: g.u16_in(1..=3),
            dataset_seed: g.usize_in(0..=499) as u64,
        }
    }

    fn build(&self) -> GeneratorConfig {
        let mut groups = vec![GroupSpec::new("majority", 0.6)];
        for g in 0..self.extra_groups {
            groups.push(
                GroupSpec::new(format!("g{g}"), 0.4 / self.extra_groups as f32)
                    .with_angle(30.0 + 15.0 * g as f32)
                    .with_noise_mult(1.0 + 0.3 * g as f32),
            );
        }
        GeneratorConfig {
            num_samples: self.num_samples,
            feature_dim: self.feature_dim,
            num_classes: self.num_classes,
            class_sep: 2.0,
            base_noise: 1.0,
            spectral_decay: 0.85,
            attributes: vec![AttributeSpec::new("a", groups, vec![(0, 1)])],
            correlation: self.correlation,
            interactions: vec![],
        }
    }
}

impl Shrink for ConfigCase {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let mut push = |case: ConfigCase| out.push(case);
        if self.num_samples > 50 {
            push(Self { num_samples: 50, ..self.clone() });
            push(Self { num_samples: (self.num_samples + 50) / 2, ..self.clone() });
        }
        if self.feature_dim > 4 {
            push(Self { feature_dim: 4, ..self.clone() });
        }
        if self.num_classes > 2 {
            push(Self { num_classes: 2, ..self.clone() });
        }
        if self.correlation != 0.0 {
            push(Self { correlation: 0.0, ..self.clone() });
            push(Self { correlation: self.correlation / 2.0, ..self.clone() });
        }
        if self.extra_groups > 1 {
            push(Self { extra_groups: 1, ..self.clone() });
        }
        if self.dataset_seed != 0 {
            push(Self { dataset_seed: 0, ..self.clone() });
        }
        out
    }
}

#[test]
fn generated_datasets_are_structurally_valid() {
    check("generated datasets are structurally valid", config(), ConfigCase::generate, |case| {
        let cfg = case.build();
        let gen = DataGenerator::new(cfg.clone()).expect("case builds valid configs");
        let ds = gen.generate(&mut Rng64::seed(case.dataset_seed));
        prop_assert_eq!(ds.len(), cfg.num_samples);
        prop_assert_eq!(ds.feature_dim(), cfg.feature_dim);
        prop_assert!(ds.labels().iter().all(|&l| l < cfg.num_classes));
        prop_assert!(ds.features().iter_rows().flatten().all(|x| x.is_finite()));
        let attr = ds.schema().by_name("a").expect("attribute a");
        let num_groups = ds.schema().get(attr).expect("a").num_groups();
        prop_assert!(ds.groups(attr).iter().all(|&g| (g as usize) < num_groups));
        Ok(())
    });
}

#[test]
fn splits_partition_any_generated_dataset() {
    check("splits partition any generated dataset", config(), ConfigCase::generate, |case| {
        let gen = DataGenerator::new(case.build()).expect("valid");
        let ds = gen.generate(&mut Rng64::seed(case.dataset_seed));
        let split = ds.split_default(&mut Rng64::seed(case.dataset_seed ^ 0xABCD));
        prop_assert_eq!(split.train.len() + split.val.len() + split.test.len(), ds.len());
        prop_assert!(split.train.len() >= split.test.len());
        Ok(())
    });
}

#[test]
fn unfairness_score_is_bounded() {
    check(
        "unfairness score is bounded",
        config(),
        |g| (g.vec_usize(1..=199, 0..=3), g.usize_in(0..=99) as u64),
        |(preds, seed)| {
            if preds.is_empty() {
                return Ok(()); // shrinking may propose the empty vector
            }
            let mut rng = Rng64::seed(*seed);
            let labels: Vec<usize> = preds.iter().map(|_| rng.below(4)).collect();
            let num_groups = 3usize;
            let groups: Vec<u16> = preds.iter().map(|_| rng.below(num_groups) as u16).collect();
            let u = unfairness_score(preds, &labels, &groups, num_groups);
            prop_assert!(u >= 0.0);
            prop_assert!(u <= num_groups as f32);
            Ok(())
        },
    );
}

#[test]
fn perfect_predictions_have_zero_unfairness() {
    check(
        "perfect predictions have zero unfairness",
        config(),
        |g| (g.vec_usize(1..=99, 0..=4), g.usize_in(0..=99) as u64),
        |(labels, seed)| {
            if labels.is_empty() {
                return Ok(());
            }
            let mut rng = Rng64::seed(*seed);
            let groups: Vec<u16> = labels.iter().map(|_| rng.below(4) as u16).collect();
            let u = unfairness_score(labels, labels, &groups, 4);
            prop_assert!(u.abs() < 1e-6);
            Ok(())
        },
    );
}

#[test]
fn search_space_samples_always_decode() {
    check(
        "search space samples always decode",
        config(),
        |g| (g.usize_in(1..=11), g.usize_in(1..=3), g.usize_in(0..=499) as u64),
        |&(pool_size, slots, seed)| {
            // Shrinking can drive the sizes to 0; clamp back into the domain.
            let (pool_size, slots) = (pool_size.max(1), slots.max(1));
            let space = SearchSpace::new(
                pool_size,
                slots,
                vec![2, 3, 4],
                vec![8, 10, 12, 16],
                Activation::SEARCHABLE.to_vec(),
            )
            .expect("valid space");
            let mut rng = Rng64::seed(seed);
            let sizes = space.step_sizes();
            let actions: Vec<usize> = sizes.iter().map(|&n| rng.below(n)).collect();
            let candidate = space.decode(&actions).expect("in-range actions decode");
            prop_assert!(!candidate.model_indices.is_empty());
            prop_assert!(candidate.model_indices.len() <= slots);
            prop_assert!(candidate.model_indices.iter().all(|&m| m < pool_size));
            prop_assert!((2..=4).contains(&candidate.head.hidden().len()));
            // Distinctness: no duplicates in the body.
            let mut sorted = candidate.model_indices.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), candidate.model_indices.len());
            Ok(())
        },
    );
}

#[test]
fn pareto_frontier_members_are_mutually_nondominating() {
    check(
        "pareto frontier members are mutually nondominating",
        config(),
        |g| {
            let n = g.usize_in(1..=39);
            (0..n)
                .map(|_| (g.f32_in(0.0, 10.0), g.f32_in(0.0, 10.0)))
                .collect::<Vec<(f32, f32)>>()
        },
        |points| {
            if points.is_empty() {
                return Ok(());
            }
            let front = pareto_min_indices(points, |&p| p);
            prop_assert!(!front.is_empty());
            for &i in &front {
                for &j in &front {
                    if i != j {
                        let (a, b) = (points[i], points[j]);
                        let dominates = a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1);
                        prop_assert!(!dominates, "frontier member {i} dominates {j}");
                    }
                }
            }
            // Every non-member is dominated by some member (or tied duplicate).
            for (k, &p) in points.iter().enumerate() {
                if !front.contains(&k) {
                    let covered =
                        front.iter().any(|&i| points[i].0 <= p.0 && points[i].1 <= p.1);
                    prop_assert!(covered, "point {k} excluded but not dominated");
                }
            }
            Ok(())
        },
    );
}
