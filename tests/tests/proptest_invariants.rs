//! Property-based integration tests over the whole stack: random
//! generator configurations, random search spaces, and random prediction
//! vectors must all uphold the framework's invariants.

use muffin::{pareto_min_indices, unfairness_score, SearchSpace};
use muffin_data::{AttributeSpec, DataGenerator, GeneratorConfig, GroupSpec};
use muffin_nn::Activation;
use muffin_tensor::Rng64;
use proptest::prelude::*;

fn small_config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (
        50usize..300,
        4usize..16,
        2usize..6,
        0.0f32..1.0,
        1u16..4,
        0u64..1000,
    )
        .prop_map(|(n, dim, classes, corr, extra_groups, _seed)| {
            let mut groups = vec![GroupSpec::new("majority", 0.6)];
            for g in 0..extra_groups {
                groups.push(
                    GroupSpec::new(format!("g{g}"), 0.4 / extra_groups as f32)
                        .with_angle(30.0 + 15.0 * g as f32)
                        .with_noise_mult(1.0 + 0.3 * g as f32),
                );
            }
            GeneratorConfig {
                num_samples: n,
                feature_dim: dim,
                num_classes: classes,
                class_sep: 2.0,
                base_noise: 1.0,
                spectral_decay: 0.85,
                attributes: vec![AttributeSpec::new("a", groups, vec![(0, 1)])],
                correlation: corr,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_datasets_are_structurally_valid(config in small_config_strategy(), seed in 0u64..500) {
        let gen = DataGenerator::new(config.clone()).expect("strategy builds valid configs");
        let ds = gen.generate(&mut Rng64::seed(seed));
        prop_assert_eq!(ds.len(), config.num_samples);
        prop_assert_eq!(ds.feature_dim(), config.feature_dim);
        prop_assert!(ds.labels().iter().all(|&l| l < config.num_classes));
        prop_assert!(ds.features().as_slice().iter().all(|x| x.is_finite()));
        let attr = ds.schema().by_name("a").expect("attribute a");
        let num_groups = ds.schema().get(attr).expect("a").num_groups();
        prop_assert!(ds.groups(attr).iter().all(|&g| (g as usize) < num_groups));
    }

    #[test]
    fn splits_partition_any_generated_dataset(config in small_config_strategy(), seed in 0u64..500) {
        let gen = DataGenerator::new(config).expect("valid");
        let ds = gen.generate(&mut Rng64::seed(seed));
        let split = ds.split_default(&mut Rng64::seed(seed ^ 0xABCD));
        prop_assert_eq!(split.train.len() + split.val.len() + split.test.len(), ds.len());
        prop_assert!(split.train.len() >= split.test.len());
    }

    #[test]
    fn unfairness_score_is_bounded(
        preds in proptest::collection::vec(0usize..4, 1..200),
        seed in 0u64..100,
    ) {
        let mut rng = Rng64::seed(seed);
        let labels: Vec<usize> = preds.iter().map(|_| rng.below(4)).collect();
        let num_groups = 3usize;
        let groups: Vec<u16> = preds.iter().map(|_| rng.below(num_groups) as u16).collect();
        let u = unfairness_score(&preds, &labels, &groups, num_groups);
        prop_assert!(u >= 0.0);
        prop_assert!(u <= num_groups as f32);
    }

    #[test]
    fn perfect_predictions_have_zero_unfairness(
        labels in proptest::collection::vec(0usize..5, 1..100),
        seed in 0u64..100,
    ) {
        let mut rng = Rng64::seed(seed);
        let groups: Vec<u16> = labels.iter().map(|_| rng.below(4) as u16).collect();
        let u = unfairness_score(&labels, &labels, &groups, 4);
        prop_assert!(u.abs() < 1e-6);
    }

    #[test]
    fn search_space_samples_always_decode(
        pool_size in 1usize..12,
        slots in 1usize..4,
        seed in 0u64..500,
    ) {
        let space = SearchSpace::new(
            pool_size,
            slots,
            vec![2, 3, 4],
            vec![8, 10, 12, 16],
            Activation::SEARCHABLE.to_vec(),
        ).expect("valid space");
        let mut rng = Rng64::seed(seed);
        let sizes = space.step_sizes();
        let actions: Vec<usize> = sizes.iter().map(|&n| rng.below(n)).collect();
        let candidate = space.decode(&actions).expect("in-range actions decode");
        prop_assert!(!candidate.model_indices.is_empty());
        prop_assert!(candidate.model_indices.len() <= slots);
        prop_assert!(candidate.model_indices.iter().all(|&m| m < pool_size));
        prop_assert!((2..=4).contains(&candidate.head.hidden().len()));
        // Distinctness: no duplicates in the body.
        let mut sorted = candidate.model_indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), candidate.model_indices.len());
    }

    #[test]
    fn pareto_frontier_members_are_mutually_nondominating(
        points in proptest::collection::vec((0.0f32..10.0, 0.0f32..10.0), 1..40),
    ) {
        let front = pareto_min_indices(&points, |&p| p);
        prop_assert!(!front.is_empty());
        for &i in &front {
            for &j in &front {
                if i != j {
                    let (a, b) = (points[i], points[j]);
                    let dominates = a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1);
                    prop_assert!(!dominates, "frontier member {i} dominates {j}");
                }
            }
        }
        // Every non-member is dominated by some member (or tied duplicate).
        for (k, &p) in points.iter().enumerate() {
            if !front.contains(&k) {
                let covered = front.iter().any(|&i| {
                    points[i].0 <= p.0 && points[i].1 <= p.1
                });
                prop_assert!(covered, "point {k} excluded but not dominated");
            }
        }
    }
}
