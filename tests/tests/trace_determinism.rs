//! The observability determinism contract at integration scope: attaching a
//! capturing tracer never changes search results, and the event log — once
//! wall-clock timings are stripped — is byte-identical across repeated runs
//! and across worker counts.

use muffin::{Tracer, WorkerPool};
use muffin_integration_tests::golden_search;
use muffin_trace::TraceLog;

/// Runs the golden recipe with `tracer` on `workers`, returning the outcome
/// JSON and the finished trace log.
fn traced_run(tracer: Tracer, workers: &WorkerPool) -> (String, TraceLog) {
    let (search, mut rng) = golden_search();
    let search = search.with_tracer(tracer);
    let outcome = search
        .run_with_pool(&mut rng, workers)
        .expect("search runs");
    (muffin_json::to_string(&outcome), search.tracer().finish())
}

#[test]
fn capturing_tracer_does_not_change_the_outcome() {
    let (noop_json, noop_log) = traced_run(Tracer::noop(), &WorkerPool::serial());
    let (traced_json, traced_log) = traced_run(Tracer::capturing(), &WorkerPool::serial());
    assert!(
        noop_log.events.is_empty(),
        "no-op tracer must record nothing"
    );
    assert!(
        !traced_log.events.is_empty(),
        "capturing tracer must record events"
    );
    assert!(
        noop_json == traced_json,
        "attaching a capturing tracer changed the SearchOutcome bytes"
    );
}

#[test]
fn stripped_logs_are_byte_identical_across_runs() {
    let (_, first) = traced_run(Tracer::capturing(), &WorkerPool::serial());
    let (_, second) = traced_run(Tracer::capturing(), &WorkerPool::serial());
    assert_eq!(
        muffin_json::to_string(&first.stripped()),
        muffin_json::to_string(&second.stripped()),
        "two identical runs produced different stripped trace logs"
    );
}

#[test]
fn stripped_logs_are_byte_identical_across_worker_counts() {
    let (serial_json, serial_log) = traced_run(Tracer::capturing(), &WorkerPool::serial());
    let serial_stripped = muffin_json::to_string(&serial_log.stripped());
    for workers in [2usize, 4] {
        let (json, log) = traced_run(Tracer::capturing(), &WorkerPool::new(workers));
        assert!(json == serial_json, "outcome diverged at {workers} workers");
        assert_eq!(
            muffin_json::to_string(&log.stripped()),
            serial_stripped,
            "stripped trace log diverged at {workers} workers"
        );
    }
}
