//! Golden-snapshot determinism suite: the serialised `SearchOutcome` of a
//! frozen recipe is committed at `tests/golden/search_outcome.json`, and
//! re-running the recipe — serially or on a four-worker pool — must
//! reproduce it byte for byte.
//!
//! If an intentional behaviour change invalidates the snapshot, regenerate
//! it with `scripts/regen-golden.sh` and commit the diff alongside the
//! change that caused it.

use muffin::WorkerPool;
use muffin_integration_tests::{
    golden_outcome_json, golden_outcome_json_resumed, golden_snapshot_path,
};

fn committed_snapshot() -> String {
    let path = golden_snapshot_path();
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read committed golden snapshot {}: {e}\n\
             generate it with scripts/regen-golden.sh",
            path.display()
        )
    })
}

fn assert_matches_snapshot(actual: &str, label: &str) {
    let expected = committed_snapshot();
    assert!(
        actual == expected,
        "{label} SearchOutcome diverged from tests/golden/search_outcome.json \
         ({} vs {} bytes).\n\
         If this change is intentional, refresh the snapshot with \
         scripts/regen-golden.sh and commit the updated file.",
        actual.len(),
        expected.len()
    );
}

#[test]
fn serial_search_reproduces_the_committed_snapshot() {
    assert_matches_snapshot(&golden_outcome_json(&WorkerPool::serial()), "serial");
}

#[test]
fn four_worker_search_reproduces_the_committed_snapshot() {
    assert_matches_snapshot(&golden_outcome_json(&WorkerPool::new(4)), "4-worker");
}

// The golden recipe runs 8 episodes with a REINFORCE batch of 3, so the
// interruptible batch boundaries are episodes 3 and 6. Killing at either
// and resuming must reproduce the committed snapshot byte for byte — the
// checkpoint/resume path may not perturb the trajectory at any worker
// count.

#[test]
fn kill_at_first_boundary_and_resume_reproduces_the_snapshot() {
    assert_matches_snapshot(
        &golden_outcome_json_resumed(&WorkerPool::serial(), 3, "serial"),
        "serial kill-at-3 + resume",
    );
}

#[test]
fn kill_at_second_boundary_and_resume_reproduces_the_snapshot() {
    assert_matches_snapshot(
        &golden_outcome_json_resumed(&WorkerPool::serial(), 6, "serial"),
        "serial kill-at-6 + resume",
    );
}

#[test]
fn four_worker_kill_and_resume_reproduces_the_snapshot() {
    assert_matches_snapshot(
        &golden_outcome_json_resumed(&WorkerPool::new(4), 3, "par"),
        "4-worker kill-at-3 + resume",
    );
}

// The blocked matmul kernels promise byte-identical floats regardless of
// how work is sliced, so the committed snapshot must be reproduced at
// *every* worker count, not just the serial and 4-worker recipes above —
// a kernel whose result depended on batch shape or scratch-buffer reuse
// would diverge somewhere in this sweep.

#[test]
fn blocked_kernels_reproduce_the_snapshot_at_every_worker_count() {
    for workers in [2usize, 3, 5, 8] {
        assert_matches_snapshot(
            &golden_outcome_json(&WorkerPool::new(workers)),
            &format!("{workers}-worker (blocked-kernel sweep)"),
        );
    }
}

/// Regeneration path, invoked by `scripts/regen-golden.sh`:
/// `cargo test ... -- --ignored regenerate_golden_snapshot`.
#[test]
#[ignore = "rewrites tests/golden/search_outcome.json; run via scripts/regen-golden.sh"]
fn regenerate_golden_snapshot() {
    let path = golden_snapshot_path();
    std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
    let json = golden_outcome_json(&WorkerPool::serial());
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote {} ({} bytes)", path.display(), json.len());
}
