//! Shared helpers for the Muffin examples.
//!
//! Each example is a standalone binary:
//!
//! * `quickstart` — the smallest end-to-end Muffin run,
//! * `dermatology_isic` — the full ISIC-like workflow the paper's
//!   introduction motivates (multi-attribute dermatology diagnosis),
//! * `fitzpatrick_validation` — skin-tone fairness on the
//!   Fitzpatrick17K-like dataset,
//! * `custom_pool` — bringing your own dataset schema and architectures,
//! * `pareto_explore` — exploring the accuracy/fairness trade-off space.
//!
//! Run one with `cargo run --release -p muffin-examples --bin quickstart`.

use muffin::ModelEvaluation;

/// Renders one evaluation as a compact single line for example output.
pub fn one_line(eval: &ModelEvaluation) -> String {
    let attrs: Vec<String> = eval
        .attributes
        .iter()
        .map(|a| format!("U_{} {:.3}", a.name, a.unfairness))
        .collect();
    format!("{:40} acc {:5.2}%  {}", eval.model, eval.accuracy * 100.0, attrs.join("  "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use muffin_data::{AttributeSchema, Dataset, SensitiveAttribute};
    use muffin_tensor::Matrix;

    #[test]
    fn one_line_mentions_model_accuracy_and_attributes() {
        let ds = Dataset::new(
            Matrix::zeros(2, 1),
            vec![0, 1],
            2,
            AttributeSchema::new(vec![SensitiveAttribute::new("age", &["young", "old"])]),
            vec![vec![0, 1]],
        );
        let eval = ModelEvaluation::of(&[0, 1], &ds, "TestNet".into());
        let line = one_line(&eval);
        assert!(line.contains("TestNet"));
        assert!(line.contains("100.00%"));
        assert!(line.contains("U_age"));
    }
}
