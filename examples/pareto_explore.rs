//! Exploring the accuracy/fairness trade-off space.
//!
//! Runs an unrestricted Muffin search, then walks the search history to
//! extract three frontiers: (age vs site unfairness), (accuracy vs overall
//! unfairness), and (reward vs total parameters) — the trade-off the
//! paper's Figure 9(b) highlights. Also dumps the full history as JSON so
//! the points can be plotted elsewhere.
//!
//! ```text
//! cargo run --release -p muffin-examples --bin pareto_explore [episodes]
//! ```

use muffin::{pareto_max_min_indices, pareto_min_indices, MuffinSearch, SearchConfig, TextTable};
use muffin_data::IsicLike;
use muffin_models::{Architecture, BackboneConfig, ModelPool};
use muffin_tensor::Rng64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let episodes: u32 =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(60);
    let mut rng = Rng64::seed(19);
    let dataset = IsicLike::new().with_num_samples(4_000).generate(&mut rng);
    let split = dataset.split_default(&mut rng);
    let pool = ModelPool::train(
        &split.train,
        &[
            Architecture::shufflenet_v2_x1_0(),
            Architecture::mobilenet_v3_small(),
            Architecture::densenet121(),
            Architecture::resnet18(),
            Architecture::resnet50(),
        ],
        &BackboneConfig::default().with_epochs(30),
        &mut rng,
    );

    let config = SearchConfig::paper(&["age", "site"]).with_episodes(episodes);
    let search = MuffinSearch::new(pool, split, config)?;
    let outcome = search.run(&mut rng)?;
    let distinct: Vec<_> = outcome.distinct().into_iter().cloned().collect();
    println!("{} episodes, {} distinct candidates\n", episodes, distinct.len());

    // Frontier 1: age vs site unfairness (validation metrics).
    let f1 = pareto_min_indices(&distinct, |r| (r.unfairness[0], r.unfairness[1]));
    let mut t1 = TextTable::new(&["U_age", "U_site", "acc", "body", "head"]);
    for &i in &f1 {
        let r = &distinct[i];
        t1.row_owned(vec![
            format!("{:.4}", r.unfairness[0]),
            format!("{:.4}", r.unfairness[1]),
            format!("{:.2}%", r.accuracy * 100.0),
            r.model_names.join("+"),
            r.head_desc.clone(),
        ]);
    }
    println!("frontier: age vs site unfairness\n{t1}");

    // Frontier 2: accuracy (max) vs overall unfairness (min).
    let f2 = pareto_max_min_indices(&distinct, |r| {
        (r.accuracy, r.unfairness.iter().sum::<f32>())
    });
    let mut t2 = TextTable::new(&["acc", "U_total", "body"]);
    for &i in &f2 {
        let r = &distinct[i];
        t2.row_owned(vec![
            format!("{:.2}%", r.accuracy * 100.0),
            format!("{:.4}", r.unfairness.iter().sum::<f32>()),
            r.model_names.join("+"),
        ]);
    }
    println!("frontier: accuracy vs overall unfairness\n{t2}");

    // Frontier 3: reward (max) vs total parameters (min) — Fig. 9(b)'s
    // trade-off between quality and deployment cost.
    let f3 = pareto_max_min_indices(&distinct, |r| (r.reward, r.total_params as f32));
    let mut t3 = TextTable::new(&["reward", "total params", "body"]);
    for &i in &f3 {
        let r = &distinct[i];
        t3.row_owned(vec![
            format!("{:.3}", r.reward),
            r.total_params.to_string(),
            r.model_names.join("+"),
        ]);
    }
    println!("frontier: reward vs parameters\n{t3}");

    // Machine-readable dump for plotting.
    let json = muffin_json::to_string(&distinct);
    let path = std::env::temp_dir().join("muffin_pareto_history.json");
    std::fs::write(&path, json)?;
    println!("full history written to {}", path.display());
    Ok(())
}
