//! Bring-your-own-everything: a custom dataset schema and custom
//! architectures.
//!
//! Muffin is not tied to the built-in dermatology simulators. This example
//! defines a loan-approval-flavoured synthetic dataset with two sensitive
//! attributes (region × income bracket), declares two custom architecture
//! descriptors, and runs the same fairness pipeline on them.
//!
//! ```text
//! cargo run --release -p muffin-examples --bin custom_pool
//! ```

use muffin::{MuffinSearch, SearchConfig};
use muffin_data::{AttributeSpec, DataGenerator, GeneratorConfig, GroupSpec};
use muffin_examples::one_line;
use muffin_models::{Architecture, BackboneConfig, ModelFamily, ModelPool};
use muffin_tensor::Rng64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng64::seed(17);

    // A 4-class decision problem with two entangled sensitive attributes.
    let config = GeneratorConfig {
        num_samples: 3_000,
        feature_dim: 16,
        num_classes: 4,
        class_sep: 2.0,
        base_noise: 1.2,
        spectral_decay: 0.85,
        attributes: vec![
            AttributeSpec::new(
                "region",
                vec![
                    GroupSpec::new("urban", 0.55),
                    GroupSpec::new("suburban", 0.30),
                    GroupSpec::new("rural", 0.15).with_angle(65.0).with_noise_mult(1.8),
                ],
                vec![(0, 1)],
            ),
            AttributeSpec::new(
                "income",
                vec![
                    GroupSpec::new("high", 0.35),
                    GroupSpec::new("middle", 0.45),
                    GroupSpec::new("low", 0.20).with_angle(-60.0).with_noise_mult(1.7),
                ],
                vec![(1, 2)],
            ),
        ],
        correlation: 0.4,
        interactions: vec![],
    };
    let dataset = DataGenerator::new(config)?.generate(&mut rng);
    let split = dataset.split_default(&mut rng);
    println!(
        "custom dataset: {} samples, attributes {:?}",
        dataset.len(),
        dataset.schema().attribute_names()
    );

    // Two in-house model families with their own capacities.
    let architectures = [
        Architecture::custom("TabNet-S", ModelFamily::MobileNet, 8, &[24], 900_000, 501),
        Architecture::custom("TabNet-L", ModelFamily::ResNet, 12, &[48, 24], 4_200_000, 502),
        Architecture::custom("WideTab", ModelFamily::DenseNet, 10, &[64], 2_100_000, 503),
    ];
    let pool = ModelPool::train(
        &split.train,
        &architectures,
        &BackboneConfig::default().with_epochs(30),
        &mut rng,
    );
    println!("\npool on the test split:");
    for model in pool.iter() {
        println!("  {}", one_line(&model.evaluate(&split.test)));
    }

    let config = SearchConfig::fast(&["region", "income"]).with_episodes(50);
    let search = MuffinSearch::new(pool, split.clone(), config)?;
    println!(
        "\ninferred unprivileged groups: {:?}",
        search
            .privilege()
            .attributes()
            .iter()
            .map(|&a| (a.index(), search.privilege().unprivileged_groups(a).to_vec()))
            .collect::<Vec<_>>()
    );
    let outcome = search.run(&mut rng)?;
    let best = outcome.best();
    let fusing = search.rebuild(best)?;
    println!("\nbest: {} with head {}", best.model_names.join(" + "), best.head_desc);
    println!("  {}", one_line(&fusing.evaluate(search.pool(), &split.test)));
    Ok(())
}
