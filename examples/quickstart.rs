//! Quickstart: the smallest end-to-end Muffin run.
//!
//! Generates a small ISIC-like dataset with two entangled unfair
//! attributes, trains a two-model pool, searches for a fusing structure
//! with a short reinforcement-learning budget, and reports how the best
//! Muffin-Net compares with the pool on accuracy and both unfairness
//! scores.
//!
//! ```text
//! cargo run --release -p muffin-examples --bin quickstart
//! ```

use muffin::{MuffinSearch, SearchConfig};
use muffin_data::IsicLike;
use muffin_examples::one_line;
use muffin_models::{Architecture, BackboneConfig, ModelPool};
use muffin_tensor::Rng64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng64::seed(7);

    // 1. A dataset with multiple sensitive attributes (age, site, gender).
    let dataset = IsicLike::small().generate(&mut rng);
    let split = dataset.split_default(&mut rng);
    println!("dataset: {} samples, {} classes", dataset.len(), dataset.num_classes());

    // 2. Off-the-shelf models: train once, then freeze.
    let pool = ModelPool::train(
        &split.train,
        &[Architecture::resnet18(), Architecture::densenet121(), Architecture::mobilenet_v2()],
        &BackboneConfig::fast(),
        &mut rng,
    );
    println!("\npool on the test split:");
    for model in pool.iter() {
        println!("  {}", one_line(&model.evaluate(&split.test)));
    }

    // 3. Search for a model-fusing structure optimising age AND site.
    let config = SearchConfig::fast(&["age", "site"]).with_episodes(40);
    let search = MuffinSearch::new(pool, split.clone(), config)?;
    println!(
        "\nproxy dataset: {} unprivileged samples of {} train samples",
        search.proxy().len(),
        split.train.len()
    );
    let outcome = search.run(&mut rng)?;

    // 4. Report the best structure found.
    let best = outcome.best();
    println!(
        "\nbest candidate (episode {}): {} with head {}",
        best.first_seen,
        best.model_names.join(" + "),
        best.head_desc
    );
    let fusing = search.rebuild(best)?;
    println!("  {}", one_line(&fusing.evaluate(search.pool(), &split.test)));
    Ok(())
}
