//! Dermatology assistant scenario (the paper's motivating application).
//!
//! A clinic deploys a dermatology classifier. Its data is unfair along two
//! entangled dimensions — patient **age** and lesion **site** — and the
//! usual fixes seesaw: re-balancing for age makes site worse. This example
//! walks the full Muffin workflow: diagnose the unfairness, demonstrate
//! the seesaw, then unite off-the-shelf models to improve both attributes
//! at once.
//!
//! ```text
//! cargo run --release -p muffin-examples --bin dermatology_isic
//! ```

use muffin::{fmt_improvement, MuffinSearch, SearchConfig, TextTable};
use muffin_data::IsicLike;
use muffin_examples::one_line;
use muffin_models::{Architecture, BackboneConfig, FairnessMethod, ModelPool};
use muffin_tensor::Rng64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng64::seed(11);
    let dataset = IsicLike::new().with_num_samples(4_000).generate(&mut rng);
    let split = dataset.split_default(&mut rng);
    let backbone = BackboneConfig::default().with_epochs(30);

    // Step 1 — diagnose: every off-the-shelf model is unfair on age and
    // site, and no model is best on both.
    let archs = [
        Architecture::shufflenet_v2_x1_0(),
        Architecture::mobilenet_v2(),
        Architecture::densenet121(),
        Architecture::resnet18(),
    ];
    let mut pool = ModelPool::train(&split.train, &archs, &backbone, &mut rng);
    println!("step 1 — the pool is unfair on age and site:");
    for model in pool.iter() {
        println!("  {}", one_line(&model.evaluate(&split.test)));
    }

    // Step 2 — the seesaw: single-attribute fixes trade one attribute for
    // the other.
    let age = dataset.schema().by_name("age").expect("age");
    let site = dataset.schema().by_name("site").expect("site");
    let base = Architecture::shufflenet_v2_x1_0();
    let vanilla = pool.by_name(base.name()).expect("in pool").evaluate(&split.test);
    println!("\nstep 2 — single-attribute interventions on {}:", base.name());
    let mut table = TextTable::new(&["intervention", "age vs vanilla", "site vs vanilla"]);
    for (method, attr, label) in [
        (FairnessMethod::DataBalancing, age, "D(age)"),
        (FairnessMethod::DataBalancing, site, "D(site)"),
        (FairnessMethod::FairLoss, age, "L(age)"),
        (FairnessMethod::FairLoss, site, "L(site)"),
    ] {
        let optimised = method.apply(&base, &split.train, attr, &backbone, &mut rng);
        let eval = optimised.evaluate(&split.test);
        table.row_owned(vec![
            label.into(),
            fmt_improvement(
                vanilla.attribute("age").unwrap().unfairness,
                eval.attribute("age").unwrap().unfairness,
            ),
            fmt_improvement(
                vanilla.attribute("site").unwrap().unfairness,
                eval.attribute("site").unwrap().unfairness,
            ),
        ]);
        // Optimised variants also join the pool — they are off-the-shelf
        // models too, and Muffin may unite them.
        pool.push(optimised);
    }
    println!("{table}");

    // Step 3 — Muffin: unite models to move both attributes together.
    println!("step 3 — Muffin search over the enriched pool ({} models):", pool.len());
    let config = SearchConfig::paper(&["age", "site"]).with_episodes(120);
    let search = MuffinSearch::new(pool, split.clone(), config)?;
    let outcome = search.run(&mut rng)?;
    // Pick the highest-reward candidate that genuinely unites two models —
    // the Eq. 3 reward already balances accuracy against both unfairness
    // scores.
    let best = outcome
        .distinct()
        .into_iter()
        .filter(|r| r.model_names.len() >= 2)
        .max_by(|a, b| a.reward.partial_cmp(&b.reward).unwrap_or(std::cmp::Ordering::Equal))
        .expect("history is non-empty");
    let fusing = search.rebuild(best)?;
    let eval = fusing.evaluate(search.pool(), &split.test);
    println!("  best: {} with head {}", best.model_names.join(" + "), best.head_desc);
    println!("  {}", one_line(&eval));
    println!(
        "  vs vanilla {}: age {}, site {}, accuracy {:+.2}pp",
        base.name(),
        fmt_improvement(
            vanilla.attribute("age").unwrap().unfairness,
            eval.attribute("age").unwrap().unfairness
        ),
        fmt_improvement(
            vanilla.attribute("site").unwrap().unfairness,
            eval.attribute("site").unwrap().unfairness
        ),
        (eval.accuracy - vanilla.accuracy) * 100.0
    );
    Ok(())
}
