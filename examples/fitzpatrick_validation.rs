//! Skin-tone fairness scenario on the Fitzpatrick17K-like dataset.
//!
//! Dermatology models are notoriously less accurate on darker skin tones
//! (Fitzpatrick types V–VI). This example targets **skin tone** and lesion
//! **type** simultaneously and inspects the per-tone accuracy of the
//! resulting Muffin-Balance model, mirroring the paper's Section 4.5.
//!
//! ```text
//! cargo run --release -p muffin-examples --bin fitzpatrick_validation
//! ```

use muffin::{per_group_accuracy_table, MuffinSearch, SearchConfig, TextTable};
use muffin_data::{FitzpatrickLike, GroupId};
use muffin_examples::one_line;
use muffin_models::{Architecture, BackboneConfig, ModelPool};
use muffin_tensor::Rng64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng64::seed(13);
    let dataset = FitzpatrickLike::new().with_num_samples(4_000).generate(&mut rng);
    let split = dataset.split_default(&mut rng);
    let backbone = BackboneConfig::default().with_epochs(30);

    // The paper's Fitzpatrick pool: ResNet, ShuffleNet and MobileNet.
    let pool = ModelPool::train(
        &split.train,
        &[
            Architecture::resnet18(),
            Architecture::shufflenet_v2_x1_0(),
            Architecture::mobilenet_v3_large(),
            Architecture::mobilenet_v3_small(),
        ],
        &backbone,
        &mut rng,
    );
    println!("pool on the test split:");
    for model in pool.iter() {
        println!("  {}", one_line(&model.evaluate(&split.test)));
    }

    let config = SearchConfig::paper(&["skin_tone", "type"]).with_episodes(80);
    let search = MuffinSearch::new(pool, split.clone(), config)?;
    let outcome = search.run(&mut rng)?;
    let record = outcome
        .best_united_balanced()
        .or_else(|| outcome.best_balanced())
        .expect("history is non-empty");
    let fusing = search.rebuild(record)?;
    println!(
        "\nMuffin-Balance: {} with head {}",
        record.model_names.join(" + "),
        record.head_desc
    );
    println!("  {}", one_line(&fusing.evaluate(search.pool(), &split.test)));

    // Per-skin-tone accuracy vs the strongest single model.
    let tone = dataset.schema().by_name("skin_tone").expect("skin_tone");
    let tone_attr = dataset.schema().get(tone).expect("attribute");
    let reference = search.pool().by_name("ResNet-18").expect("in pool");
    let ref_preds = reference.predict(split.test.features());
    let muffin_preds = fusing.predict(search.pool(), split.test.features());
    let rows = per_group_accuracy_table(&[&ref_preds, &muffin_preds], &split.test, tone);
    let mut table = TextTable::new(&["skin tone", "n", "ResNet-18", "Muffin-Balance"]);
    for (g, n, accs) in rows {
        table.row_owned(vec![
            tone_attr.group_name(GroupId::new(g)).unwrap_or("?").to_string(),
            n.to_string(),
            format!("{:.2}%", accs[0] * 100.0),
            format!("{:.2}%", accs[1] * 100.0),
        ]);
    }
    println!("\n{table}");
    Ok(())
}
