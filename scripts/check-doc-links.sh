#!/usr/bin/env sh
# Dangling-link checker for the repository's markdown documentation.
#
# Walks a fixed list of documentation files, extracts every inline
# markdown link target, and fails if a *relative* target (after dropping
# any #anchor) does not exist on disk, resolved against the linking
# file's directory. External links (http/https/mailto) and pure-anchor
# links are ignored — this is an offline, std-tools-only check (grep +
# sed), safe for the hermetic CI gate.
#
#   sh scripts/check-doc-links.sh
set -eu

cd "$(dirname "$0")/.."

DOCS="README.md DESIGN.md EXPERIMENTS.md ROADMAP.md CHANGELOG.md \
      docs/OPERATIONS.md docs/PAPER_MAP.md docs/SCENARIOS.md"

status=0
for doc in $DOCS; do
    if [ ! -f "$doc" ]; then
        echo "ERROR: documentation file is missing: $doc" >&2
        status=1
        continue
    fi
    dir=$(dirname "$doc")
    # Every "](target)" occurrence, one per line (grep -o splits
    # multiple links on the same line).
    links=$(grep -oE '\]\([^)]+\)' "$doc" | sed 's/^](//; s/)$//') || continue
    # Split on newlines only: link targets never contain newlines, but
    # guarding against spaces keeps the loop honest.
    IFS='
'
    for link in $links; do
        case "$link" in
            http://* | https://* | mailto:* | "#"*) continue ;;
        esac
        target=${link%%#*}
        [ -n "$target" ] || continue
        if [ ! -e "$dir/$target" ]; then
            echo "ERROR: $doc links to a missing file: $link" >&2
            status=1
        fi
    done
    unset IFS
done

# Cross-document section references ("docs/OPERATIONS.md §12", "DESIGN.md
# §14") are plain text, not links, so the link walk above can't see them
# rot. Verify that every "<doc> §N" reference points at a real "## N."
# heading in the referenced file.
for doc in $DOCS; do
    [ -f "$doc" ] || continue
    refs=$(grep -ohE '(docs/)?(OPERATIONS|DESIGN|SCENARIOS)\.md[[:space:]]§[0-9]+' "$doc" \
        | sed 's/[[:space:]]§/ /') || continue
    IFS='
'
    for ref in $refs; do
        file=${ref% *}
        section=${ref##* }
        case "$file" in
            OPERATIONS.md | SCENARIOS.md) file="docs/$file" ;;
        esac
        if ! grep -q "^## $section\." "$file"; then
            echo "ERROR: $doc references $file §$section, which has no '## $section.' heading" >&2
            status=1
        fi
    done
    unset IFS
done

if [ "$status" -eq 0 ]; then
    echo "doc links: all relative links and section references resolve"
fi
exit "$status"
