#!/usr/bin/env sh
# Sharded-search smoke bench: times one small fixed fleet recipe at 1 and
# 2 shard slots, byte-compares the merged outcomes (the determinism
# contract of DESIGN.md §12), and archives the wall-clock numbers as a
# bench-suite JSON compatible with scripts/bench-compare.sh.
#
#   sh scripts/bench-sharded.sh [OUT_DIR]
#
# OUT_DIR defaults to target/muffin-sharded-smoke; the report lands at
# OUT_DIR/sharded.json. Wall-clock rows are archived for trend-watching,
# not hard-gated: a 2-slot fleet on a loaded CI box is too noisy for a
# strict threshold, while byte-equality is exact and always enforced.
set -eu

cd "$(dirname "$0")/.."

out_dir="${1:-target/muffin-sharded-smoke}"
mkdir -p "$out_dir"
work="$out_dir/work"
rm -rf "$work"
mkdir -p "$work"

muffin() {
    cargo run -q --release --offline -p muffin-cli -- "$@"
}

echo "==> fixture: dataset + 2-model pool"
muffin generate --samples 300 --seed 5 --out "$work/data.json"
muffin train-pool --data "$work/data.json" --archs ResNet-18,DenseNet121 \
    --epochs 2 --out "$work/pool.json"

# One fixed fleet recipe; only the shard-slot count varies between runs.
run_fleet() {
    shards="$1"
    muffin search --data "$work/data.json" --pool "$work/pool.json" \
        --attrs age,site --episodes 8 --batch 2 --seed 11 --workers 1 \
        --shards "$shards" --islands 2 --exchange-every 2 \
        --shard-dir "$work/fleet-s$shards" \
        --out "$work/outcome-s$shards.json"
}

now_ns() {
    date +%s%N
}

echo "==> fleet at 1 shard slot"
t0=$(now_ns)
run_fleet 1
t1=$(now_ns)
wall1=$((t1 - t0))

echo "==> fleet at 2 shard slots"
t0=$(now_ns)
run_fleet 2
t1=$(now_ns)
wall2=$((t1 - t0))

echo "==> merged outcomes must be byte-identical across shard slots"
if ! cmp -s "$work/outcome-s1.json" "$work/outcome-s2.json"; then
    echo "ERROR: shards=1 and shards=2 produced different merged bytes" >&2
    exit 1
fi

report="$out_dir/sharded.json"
cat > "$report" <<EOF
{
  "suite": "sharded",
  "results": [
    {
      "name": "search_wall_shards1",
      "iters_per_sample": 1,
      "samples": 1,
      "median_ns": $wall1,
      "min_ns": $wall1,
      "max_ns": $wall1
    },
    {
      "name": "search_wall_shards2",
      "iters_per_sample": 1,
      "samples": 1,
      "median_ns": $wall2,
      "min_ns": $wall2,
      "max_ns": $wall2
    }
  ]
}
EOF

rm -rf "$work"
echo "sharded smoke: outcomes byte-identical; report at $report"
echo "  shards=1: ${wall1} ns  shards=2: ${wall2} ns"
