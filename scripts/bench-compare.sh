#!/bin/sh
# Compare two directories of muffin-bench suite JSONs and print the
# median-time delta for every benchmark present in both.
#
# Usage: scripts/bench-compare.sh [--fail-above PCT] BEFORE_DIR AFTER_DIR
#
# Each directory is expected to hold the `<suite>.json` files written by
# `Harness::finish` (see `MUFFIN_BENCH_OUT`). Output is one line per
# benchmark: suite/name, before and after medians in a human unit, and
# the percentage change (negative = faster). POSIX sh + awk only.
#
# With --fail-above PCT, exits 1 if any benchmark present in both
# directories regressed by more than PCT percent — the CI regression gate.
set -eu

fail_above=""
if [ "${1-}" = "--fail-above" ]; then
    [ "$#" -ge 2 ] || { echo "error: --fail-above needs a percentage" >&2; exit 2; }
    fail_above=$2
    shift 2
fi

if [ "$#" -ne 2 ]; then
    echo "usage: $0 [--fail-above PCT] BEFORE_DIR AFTER_DIR" >&2
    exit 2
fi
before_dir=$1
after_dir=$2
[ -d "$before_dir" ] || { echo "error: $before_dir is not a directory" >&2; exit 2; }
[ -d "$after_dir" ] || { echo "error: $after_dir is not a directory" >&2; exit 2; }

# Flatten one suite JSON into "suite/name<TAB>median_ns" lines. The dump
# is pretty-printed one field per line, so a tiny awk state machine over
# the "name" / "median_ns" pairs is enough — no JSON parser needed.
extract() {
    for f in "$1"/*.json; do
        [ -f "$f" ] || continue
        suite=$(basename "$f" .json)
        awk -v suite="$suite" '
            /"name":/ {
                line = $0
                sub(/^.*"name":[ \t]*"/, "", line)
                sub(/".*$/, "", line)
                name = line
            }
            /"median_ns":/ {
                line = $0
                sub(/^.*"median_ns":[ \t]*/, "", line)
                sub(/[,}].*$/, "", line)
                if (name != "") {
                    printf "%s/%s\t%s\n", suite, name, line
                    name = ""
                }
            }
        ' "$f"
    done
}

before_tmp=$(mktemp)
after_tmp=$(mktemp)
trap 'rm -f "$before_tmp" "$after_tmp"' EXIT
extract "$before_dir" > "$before_tmp"
extract "$after_dir" > "$after_tmp"

awk -F '\t' -v fail_above="$fail_above" '
    function fmt(ns) {
        if (ns < 1e3) return sprintf("%.0f ns", ns)
        if (ns < 1e6) return sprintf("%.2f us", ns / 1e3)
        if (ns < 1e9) return sprintf("%.2f ms", ns / 1e6)
        return sprintf("%.3f s", ns / 1e9)
    }
    NR == FNR { before[$1] = $2; order[++n] = $1; next }
    { after[$1] = $2 }
    END {
        printf "%-52s %12s %12s %9s\n", "benchmark", "before", "after", "delta"
        regressions = 0
        for (i = 1; i <= n; i++) {
            key = order[i]
            if (!(key in after)) { only_before[++ob] = key; continue }
            b = before[key] + 0
            a = after[key] + 0
            pct = b > 0 ? (a - b) / b * 100 : 0
            printf "%-52s %12s %12s %+8.1f%%\n", key, fmt(b), fmt(a), pct
            if (fail_above != "" && pct > fail_above + 0) {
                regressed[++regressions] = sprintf("%s (%+.1f%% > +%s%%)", key, pct, fail_above)
            }
        }
        for (key in after) if (!(key in before)) printf "%-52s %12s %12s %9s\n", key, "-", fmt(after[key] + 0), "new"
        for (i = 1; i <= ob; i++) printf "%-52s %12s %12s %9s\n", only_before[i], fmt(before[only_before[i]] + 0), "-", "gone"
        if (regressions > 0) {
            printf "\nFAIL: %d benchmark(s) regressed beyond the --fail-above threshold:\n", regressions > "/dev/stderr"
            for (i = 1; i <= regressions; i++) printf "  %s\n", regressed[i] > "/dev/stderr"
            exit 1
        }
    }
' "$before_tmp" "$after_tmp"
