#!/usr/bin/env sh
# Tier-1 verification gate for the Muffin workspace.
#
# The workspace is hermetic (zero external crates), so everything here must
# pass from a cold, air-gapped checkout with no registry access. Run from
# the repository root:
#
#   sh scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

if command -v rustfmt >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --check || {
        echo "formatting drift detected (non-fatal for tier-1)" >&2
    }
else
    echo "==> rustfmt not installed, skipping format check"
fi

echo "==> kernel equivalence + stride awareness (blocked matmul vs naive oracle)"
cargo test -q --offline -p muffin-tensor \
    --test kernel_equivalence --test stride_awareness

echo "==> serial vs parallel search equivalence"
cargo test -q --offline -p muffin-integration-tests --test parallel_equivalence

echo "==> golden snapshot + trace determinism"
cargo test -q --offline -p muffin-integration-tests \
    --test golden_snapshot --test trace_determinism

echo "==> checkpoint/resume + persistent eval cache"
cargo test -q --offline -p muffin-integration-tests --test checkpoint_resume
cargo test -q --offline -p muffin-cli --test cli_process

echo "==> pool lifecycle: content-addressed ids + grow/resume e2e"
cargo test -q --offline -p muffin-models --test identity_props
cargo test -q --offline -p muffin-cli --test cli_process pool_lifecycle

echo "==> pool gc --dry-run smoke (never rewrites the pool)"
# A tiny end-to-end: train a 2-model pool, search 2 episodes, then ask gc
# what it would drop. The dry run must exit 0 and leave the pool file
# byte-identical.
mkdir -p target/muffin-pool-smoke
cargo run -q --release --offline -p muffin-cli -- generate \
    --samples 300 --seed 3 --out target/muffin-pool-smoke/data.json
cargo run -q --release --offline -p muffin-cli -- train-pool \
    --data target/muffin-pool-smoke/data.json \
    --archs ResNet-18,DenseNet121 --epochs 2 \
    --out target/muffin-pool-smoke/pool.json
cargo run -q --release --offline -p muffin-cli -- search \
    --data target/muffin-pool-smoke/data.json \
    --pool target/muffin-pool-smoke/pool.json \
    --attrs age,site --episodes 2 \
    --out target/muffin-pool-smoke/outcome.json
cp target/muffin-pool-smoke/pool.json target/muffin-pool-smoke/pool.before.json
cargo run -q --release --offline -p muffin-cli -- pool gc \
    --pool target/muffin-pool-smoke/pool.json \
    --outcome target/muffin-pool-smoke/outcome.json --dry-run
cmp target/muffin-pool-smoke/pool.json target/muffin-pool-smoke/pool.before.json

echo "==> sharded fleet: merge determinism + halving properties"
cargo test -q --offline -p muffin-integration-tests --test sharded_equivalence
cargo test -q --offline -p muffin --test proptest_halving

echo "==> sharded fleet smoke (wall-clock vs shard slots, byte-equality gated)"
sh scripts/bench-sharded.sh target/muffin-sharded-smoke

echo "==> body-output cache equivalence"
cargo test -q --offline -p muffin-integration-tests --test body_cache_equivalence

echo "==> serving: batching equivalence, load shedding, trace stability"
cargo test -q --offline -p muffin-serve

echo "==> serve loadgen smoke (fixed seed, bounded duration) + regression gate"
# A short closed-loop run against the demo fused model: must exit 0, write
# a bench-shaped report, and stay within the (generous, CI-noise-tolerant)
# regression threshold against the committed pr7 baseline.
mkdir -p target/muffin-loadgen-smoke
cargo run -q --release --offline -p muffin-cli -- loadgen \
    --seed 21 --clients 4 --requests 50 \
    --out target/muffin-loadgen-smoke/serve.json
sh scripts/bench-compare.sh --fail-above 400 \
    results/bench/pr7-baseline target/muffin-loadgen-smoke

echo "==> bench smoke (3 samples per bench)"
# Absolute path: `cargo bench` runs each bench with the package dir as
# CWD, so a relative MUFFIN_BENCH_OUT would land in crates/bench/.
MUFFIN_BENCH_SAMPLES=3 MUFFIN_BENCH_OUT="$PWD/target/muffin-bench-smoke" \
    cargo bench --offline -p muffin-bench

echo "==> scenario registry + handbook coverage"
cargo test -q --offline -p muffin-data --lib scenario::
cargo test -q --offline -p muffin-data --test scenario_docs

echo "==> scenario × reward matrix smoke (2x2 grid, deterministic report)"
# A tiny grid over two builtin scenarios and two reward shapes: must exit
# 0 and write the deterministic report pair plus a bench-shaped timing
# file that scripts/bench-compare.sh can diff against a saved baseline.
mkdir -p target/muffin-matrix-smoke
cargo run -q --release --offline -p muffin-cli -- matrix \
    --scenarios german-credit,edu-grades --rewards paper,intersect \
    --samples 400 --episodes 2 --epochs 2 \
    --out-dir target/muffin-matrix-smoke \
    --bench-out target/muffin-matrix-smoke/matrix.json.bench
test -s target/muffin-matrix-smoke/matrix.json
test -s target/muffin-matrix-smoke/matrix.md

echo "==> documentation link check"
sh scripts/check-doc-links.sh

echo "==> rustdoc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline

echo "==> hermeticity: no external crates in any manifest"
# Anchor to dependency-declaration lines ("<crate> = ..." or
# "<crate> = { ... }") so comments, descriptions, or in-repo crate names
# that merely *contain* a banned word (e.g. muffin-random) cannot trip the
# gate. The known serde/rand/proptest/criterion ecosystems are matched as
# whole crate names.
banned='serde|serde_json|serde_derive|rand|rand_core|rand_chacha|rand_distr|proptest|criterion'
if grep -rnE "^[[:space:]]*(${banned})[[:space:]]*=" --include=Cargo.toml \
    Cargo.toml crates tests examples; then
    echo "ERROR: external dependency reference found in a manifest" >&2
    exit 1
fi

echo "ci: all checks passed"
