#!/bin/sh
# Regenerates tests/golden/search_outcome.json from the frozen golden
# recipe in tests/src/lib.rs. Run this after an intentional behaviour
# change invalidates the golden-snapshot suite, then commit the updated
# snapshot alongside the change that caused it.
set -eu

cd "$(dirname "$0")/.."

cargo test -q --offline -p muffin-integration-tests --test golden_snapshot \
    -- --ignored regenerate_golden_snapshot

echo "regen-golden: tests/golden/search_outcome.json refreshed"
